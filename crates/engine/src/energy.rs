//! A first-order energy model, estimated post-hoc from a [`RunReport`].
//!
//! The paper's abstract claims big.TINY/HCC+DTS reaches "similar energy
//! efficiency" to full-system hardware coherence; this model reproduces
//! that comparison. Event energies are in arbitrary *energy units* chosen
//! with the usual relative magnitudes (register-file ≪ L1 ≪ L2 ≪ DRAM;
//! big out-of-order cores burn several times more per instruction and per
//! idle cycle than tiny in-order cores). Absolute joules are not meaningful
//! — only ratios between configurations are reported.

use crate::config::{CoreKind, SystemConfig};
use crate::system::RunReport;
use bigtiny_mesh::TrafficClass;

/// Per-event energy costs (arbitrary units).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct EnergyModel {
    /// Per retired instruction on a tiny in-order core.
    pub tiny_inst: f64,
    /// Per retired instruction on a big out-of-order core (speculation,
    /// renaming, wide issue).
    pub big_inst: f64,
    /// Static/idle energy per cycle, tiny core.
    pub tiny_idle_cycle: f64,
    /// Static/idle energy per cycle, big core.
    pub big_idle_cycle: f64,
    /// Per L1 access (hit or miss lookup), scaled by capacity below.
    pub l1_access_4kb: f64,
    /// Big-core 64 KB L1 access.
    pub l1_access_64kb: f64,
    /// Per L2 bank access (any request serviced).
    pub l2_access: f64,
    /// Per DRAM access (line transfer).
    pub dram_access: f64,
    /// Per 16-byte flit crossing one mesh link.
    pub flit_hop: f64,
    /// Per ULI message.
    pub uli_message: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            tiny_inst: 1.0,
            big_inst: 4.0,
            tiny_idle_cycle: 0.1,
            big_idle_cycle: 0.8,
            l1_access_4kb: 0.5,
            l1_access_64kb: 2.0,
            l2_access: 5.0,
            dram_access: 60.0,
            flit_hop: 0.5,
            uli_message: 0.5,
        }
    }
}

/// Energy attributed per subsystem (arbitrary units).
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct EnergyReport {
    /// Dynamic core energy (instructions).
    pub core_dynamic: f64,
    /// Static core energy (cycles of existence until completion).
    pub core_static: f64,
    /// L1 cache accesses.
    pub l1: f64,
    /// L2 bank accesses.
    pub l2: f64,
    /// DRAM accesses.
    pub dram: f64,
    /// Data-OCN flit-hops.
    pub network: f64,
    /// ULI network messages.
    pub uli: f64,
}

impl EnergyReport {
    /// Total energy.
    pub fn total(&self) -> f64 {
        self.core_dynamic
            + self.core_static
            + self.l1
            + self.l2
            + self.dram
            + self.network
            + self.uli
    }
}

impl EnergyModel {
    /// Estimates the energy of a run on `config` from its report.
    ///
    /// # Panics
    ///
    /// Panics if the report does not match the configuration's core count.
    pub fn estimate(&self, config: &SystemConfig, report: &RunReport) -> EnergyReport {
        assert_eq!(config.num_cores(), report.instructions.len(), "report/config mismatch");
        let mut e = EnergyReport::default();

        for (core, cc) in config.cores.iter().enumerate() {
            let insts = report.instructions[core] as f64;
            let (inst_e, idle_e, l1_e) = match cc.kind {
                CoreKind::Big => (self.big_inst, self.big_idle_cycle, self.l1_access_64kb),
                CoreKind::Tiny => (self.tiny_inst, self.tiny_idle_cycle, self.l1_access_4kb),
            };
            e.core_dynamic += insts * inst_e;
            // Every core burns static power until the program completes.
            e.core_static += report.completion_cycles as f64 * idle_e;
            let m = &report.mem_stats[core];
            e.l1 += (m.loads + m.stores + m.amos) as f64 * l1_e;
        }

        // Every L2-visible message implies a bank access; count requests.
        let t = &report.traffic;
        let l2_requests = t.messages(TrafficClass::CpuReq)
            + t.messages(TrafficClass::WbReq)
            + t.messages(TrafficClass::SyncReq)
            + t.messages(TrafficClass::CohResp);
        e.l2 += l2_requests as f64 * self.l2_access;
        e.dram += t.messages(TrafficClass::DramReq) as f64 * self.dram_access;

        // Flit-hops across all data classes.
        let data_hops = t.hop_cycles();
        e.network += data_hops as f64 * self.flit_hop;
        e.uli += report.uli.messages as f64 * self.uli_message;
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_system, AddrSpace, Protocol, ShVec, Worker};
    use std::sync::Arc;

    fn run(tiny: Protocol) -> (SystemConfig, RunReport) {
        let config = SystemConfig::big_tiny(
            "e",
            bigtiny_mesh::MeshConfig::with_topology(bigtiny_mesh::Topology::new(2, 2)),
            1,
            3,
            tiny,
        );
        let mut space = AddrSpace::new();
        let data = Arc::new(ShVec::new(&mut space, 256, 0u64));
        let mut workers: Vec<Worker> = Vec::new();
        for core in 0..4usize {
            let data = Arc::clone(&data);
            workers.push(Box::new(move |port| {
                for i in 0..64 {
                    data.write(port, (core * 64 + i) % 256, i as u64);
                    port.advance(3);
                }
                port.flush_cache();
                if core == 0 {
                    port.idle(500);
                    port.set_done();
                }
            }));
        }
        let report = run_system(&config, workers);
        (config, report)
    }

    #[test]
    fn energy_is_positive_and_decomposes() {
        let (config, report) = run(Protocol::GpuWb);
        let e = EnergyModel::default().estimate(&config, &report);
        assert!(e.core_dynamic > 0.0);
        assert!(e.core_static > 0.0);
        assert!(e.l1 > 0.0);
        assert!(e.l2 > 0.0);
        assert!(e.network > 0.0);
        let sum = e.core_dynamic + e.core_static + e.l1 + e.l2 + e.dram + e.network + e.uli;
        assert!((e.total() - sum).abs() < 1e-9);
    }

    #[test]
    fn more_traffic_means_more_network_energy() {
        let (ca, ra) = run(Protocol::GpuWt); // write-through: heavy traffic
        let (cb, rb) = run(Protocol::Mesi);
        let m = EnergyModel::default();
        let ea = m.estimate(&ca, &ra);
        let eb = m.estimate(&cb, &rb);
        assert!(
            ea.network + ea.l2 > eb.network + eb.l2,
            "WT uncore energy {} vs MESI {}",
            ea.network + ea.l2,
            eb.network + eb.l2
        );
    }

    #[test]
    fn longer_runs_burn_more_static_energy() {
        let (config, report) = run(Protocol::Mesi);
        let m = EnergyModel::default();
        let e = m.estimate(&config, &report);
        let expected =
            report.completion_cycles as f64 * (m.big_idle_cycle + 3.0 * m.tiny_idle_cycle);
        assert!((e.core_static - expected).abs() < 1e-6);
    }
}
