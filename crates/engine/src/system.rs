//! System assembly and the simulation driver.

use std::sync::Arc;

use bigtiny_coherence::{CoreMemStats, MemorySystem};
use bigtiny_mesh::{TrafficStats, UliNetwork};

use crate::breakdown::TimeBreakdown;
use crate::config::{ExecBackend, SchedulePolicy, SystemConfig};
use crate::event::{CheckMode, MemEvent};
use crate::fault::{FaultCounters, FaultPlan};
use crate::flight::{FlightEvent, LiveCounters};
use crate::port::{CorePort, PortReport};
use crate::sequencer::{ChoicePoint, Sequencer, POISON_MSG};
use crate::sync::Mutex;
use crate::watchdog::{
    record_bundle, DiagnosticBundle, PoisonReason, WatchdogConfig, WATCHDOG_MSG,
};

/// All mutable simulated state, accessed only under the sequencer token.
pub(crate) struct GlobalState {
    pub mem: MemorySystem,
    pub uli: UliNetwork,
    pub done: bool,
    pub done_time: u64,
}

/// State shared by every core thread.
pub(crate) struct Shared {
    pub seq: Sequencer,
    pub state: Mutex<GlobalState>,
    /// Heartbeat live-counter sink each port publishes into (`None` unless
    /// a heartbeat is armed).
    pub live: Option<Arc<LiveCounters>>,
}

/// A worker body: the code one simulated core runs.
pub type Worker = Box<dyn FnOnce(&mut CorePort) + Send + 'static>;

type PortReports = Arc<Mutex<Vec<Option<PortReport>>>>;
type Panics = Arc<Mutex<Vec<Box<dyn std::any::Any + Send>>>>;

/// The per-core configuration a core execution context needs, extracted so
/// it can move into a `'static` closure.
#[derive(Clone)]
struct CoreParams {
    kind: crate::config::CoreKind,
    seed: u64,
    faults: FaultPlan,
    issue_width: u64,
    overlap_div: u64,
    uli_cost: u64,
    trace: bool,
    check: bool,
    attr: bool,
    flight_ring: usize,
    num_cores: usize,
}

impl CoreParams {
    fn of(config: &SystemConfig, core: usize) -> Self {
        let kind = config.cores[core].kind;
        CoreParams {
            kind,
            seed: config.seed,
            faults: config.faults.clone(),
            issue_width: config.big_issue_width,
            overlap_div: config.big_overlap_div,
            uli_cost: match kind {
                crate::config::CoreKind::Big => config.uli_cost_big,
                crate::config::CoreKind::Tiny => config.uli_cost_tiny,
            },
            trace: config.trace,
            check: config.check.armed(),
            attr: config.attr,
            flight_ring: config.flight_ring,
            num_cores: config.num_cores(),
        }
    }

    fn build_port(self, core: usize, shared: &Arc<Shared>) -> CorePort {
        let mut port = CorePort::new(
            core,
            self.kind,
            Arc::clone(shared),
            self.seed,
            self.faults,
            self.issue_width,
            self.overlap_div,
            self.uli_cost,
            self.num_cores,
        );
        if self.trace {
            port.enable_trace();
        }
        if self.check {
            port.enable_events();
        }
        if self.attr {
            port.enable_attr();
        }
        port.set_flight_capacity(self.flight_ring);
        if let Some(live) = &shared.live {
            port.set_live(Arc::clone(live));
        }
        port
    }
}

/// The concrete execution backend a run resolved to (see [`ExecBackend`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Backend {
    Threads,
    Fibers,
    Sharded,
}

impl Backend {
    /// Stable lower-case name used in black-box dump headers.
    fn label(self) -> &'static str {
        match self {
            Backend::Threads => "threads",
            Backend::Fibers => "fibers",
            Backend::Sharded => "sharded-fibers",
        }
    }
}

/// The stable lower-case name of the backend a run of `config` resolves to
/// (`threads`, `fibers`, `sharded-fibers`) — the same string
/// [`DiagnosticBundle::backend`](crate::DiagnosticBundle) carries, for
/// harnesses labelling black-box dumps of runs that completed without a
/// bundle. `Auto` resolution consults `BIGTINY_BACKEND`, so call it in the
/// same environment as the run.
pub fn backend_label(config: &SystemConfig) -> &'static str {
    resolve_backend(config).label()
}

/// Decides which backend this run executes cores on (see [`ExecBackend`]).
fn resolve_backend(config: &SystemConfig) -> Backend {
    let supported = cfg!(all(target_os = "linux", target_arch = "x86_64"));
    match config.backend {
        ExecBackend::Threads => Backend::Threads,
        ExecBackend::Fibers => {
            assert!(supported, "ExecBackend::Fibers requires x86_64 Linux");
            Backend::Fibers
        }
        ExecBackend::ShardedFibers => {
            assert!(supported, "ExecBackend::ShardedFibers requires x86_64 Linux");
            Backend::Sharded
        }
        ExecBackend::Auto => {
            if !supported {
                return Backend::Threads;
            }
            match std::env::var("BIGTINY_BACKEND").as_deref() {
                Ok("threads") => Backend::Threads,
                Ok("sharded") => Backend::Sharded,
                _ if config.watchdog_budget.is_none() => Backend::Fibers,
                _ => Backend::Threads,
            }
        }
    }
}

/// Runs every core on its own OS thread (the portable backend, and the only
/// one compatible with the watchdog's wall-clock fallback).
fn run_cores_on_threads(
    config: &SystemConfig,
    workers: Vec<Worker>,
    shared: &Arc<Shared>,
    reports: &PortReports,
    panics: &Panics,
) {
    let mut handles = Vec::with_capacity(workers.len());
    for (core, worker) in workers.into_iter().enumerate() {
        let shared = Arc::clone(shared);
        let reports = Arc::clone(reports);
        let panics = Arc::clone(panics);
        let params = CoreParams::of(config, core);
        let handle = std::thread::Builder::new()
            .name(format!("sim-core-{core}"))
            .stack_size(config.core_stack_bytes())
            .spawn(move || {
                let mut port = params.build_port(core, &shared);
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    worker(&mut port);
                }));
                match result {
                    Ok(()) => {
                        shared.seq.retire(core);
                        reports.lock()[core] = Some(port.into_report());
                    }
                    Err(payload) => {
                        panics.lock().push(payload);
                        shared.seq.poison();
                        // Keep the partial report: the crash diagnostic is
                        // assembled from it after every thread has unwound.
                        reports.lock()[core] = Some(port.into_report());
                    }
                }
            })
            .expect("spawn simulated core thread");
        handles.push(handle);
    }
    for h in handles {
        let _ = h.join();
    }
}

/// Runs every core as a stackful fiber on the calling thread. A token
/// handoff is a user-space stack switch, with no kernel involvement; the
/// sequenced-op stream is identical to the threaded backend's because both
/// share the sequencer's grant-selection logic.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
fn run_cores_on_fibers(
    config: &SystemConfig,
    workers: Vec<Worker>,
    shared: &Arc<Shared>,
    reports: &PortReports,
    panics: &Panics,
) {
    use crate::fiber::{Fiber, FiberId, FiberRt};

    let num_cores = workers.len();
    let stack_bytes = config.core_stack_bytes();
    // The runtime outlives every fiber switch: `shared` is kept alive by the
    // caller's Arc until after this function returns, by which point all
    // fibers are done.
    let rt_ptr: *const FiberRt = shared.seq.fiber_rt().expect("fiber backend installed");

    let mut fibers = Vec::with_capacity(num_cores);
    for (core, worker) in workers.into_iter().enumerate() {
        let shared = Arc::clone(shared);
        let reports = Arc::clone(reports);
        let panics = Arc::clone(panics);
        let params = CoreParams::of(config, core);
        let entry = Box::new(move || {
            let mut port = params.build_port(core, &shared);
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                worker(&mut port);
            }));
            let next = match result {
                Ok(()) => shared.seq.retire_fiber_target(core),
                Err(payload) => {
                    panics.lock().push(payload);
                    shared.seq.poison();
                    FiberId::Launcher
                }
            };
            reports.lock()[core] = Some(port.into_report());
            // Control never returns to this closure, so its captured state
            // would otherwise leak: drop every owned handle before the final
            // switch. Nothing else runs concurrently, so the order is safe.
            drop(shared);
            drop(reports);
            drop(panics);
            // SAFETY: `rt_ptr` stays valid (see above); this fiber is marked
            // done and is never resumed, so switching away without a saved
            // return path is fine.
            unsafe {
                (*rt_ptr).mark_done(core);
                (*rt_ptr).switch(FiberId::Core(core), next);
            }
            unreachable!("a finished fiber must never be resumed");
        });
        fibers.push(Fiber::new(stack_bytes, entry));
    }

    let rt = shared.seq.fiber_rt().expect("fiber backend installed");
    for (core, fiber) in fibers.iter().enumerate() {
        rt.set_initial(core, fiber.initial_ctx());
    }

    // Launcher loop. First start every fiber in core order (the threaded
    // backend's spawn order); each runs until its first suspension. After
    // that, control only comes back here when all fibers are done or — under
    // poison — when a retiring/panicking fiber has nobody to hand the token
    // to; resuming a still-waiting fiber then makes its sequencer re-entry
    // observe the poison and unwind, draining the run.
    let mut next_start = 0;
    loop {
        let target = if next_start < num_cores {
            next_start += 1;
            Some(next_start - 1)
        } else {
            (0..num_cores).find(|&c| !rt.is_done(c))
        };
        let Some(core) = target else { break };
        // SAFETY: the target fiber is live (not done) and suspended (or
        // unstarted), and we are the only thread that ever switches fibers.
        unsafe { rt.switch(FiberId::Launcher, FiberId::Core(core)) };
    }
    // Dropping `fibers` unmaps every stack; all fibers are done here.
}

/// Runs cores as stackful fibers sharded into mesh-quadrant islands, one
/// OS thread per island. Fibers of the same island hand the token to each
/// other with pure user-space stack switches; only a cross-island handoff
/// pays a futex (unparking the target island's launcher thread). Grant
/// selection is the sequencer's single global `(time, core)` minimum, so
/// the sequenced-op stream is bit-for-bit identical to the other backends.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
fn run_cores_on_sharded_fibers(
    config: &SystemConfig,
    workers: Vec<Worker>,
    shared: &Arc<Shared>,
    reports: &PortReports,
    panics: &Panics,
) {
    let num_islands = shared.seq.sharded_rt().expect("sharded backend installed").num_islands();
    let mut members: Vec<Vec<(usize, Worker)>> = (0..num_islands).map(|_| Vec::new()).collect();
    {
        let sh = shared.seq.sharded_rt().expect("sharded backend installed");
        for (core, worker) in workers.into_iter().enumerate() {
            members[sh.island_of(core)].push((core, worker));
        }
    }
    std::thread::scope(|scope| {
        for (island, own) in members.into_iter().enumerate() {
            let shared = Arc::clone(shared);
            let reports = Arc::clone(reports);
            let panics = Arc::clone(panics);
            std::thread::Builder::new()
                .name(format!("sim-island-{island}"))
                .spawn_scoped(scope, move || {
                    drive_island(config, island, own, shared, reports, panics);
                })
                .expect("spawn island launcher thread");
        }
    });
}

/// One island's launcher: builds the island's fibers, starts them in core
/// order, then keeps resuming whichever of its fibers holds (or is being
/// handed) the token until all of them are done.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
fn drive_island(
    config: &SystemConfig,
    island: usize,
    own: Vec<(usize, Worker)>,
    shared: Arc<Shared>,
    reports: PortReports,
    panics: Panics,
) {
    use crate::fiber::{Fiber, FiberId, FiberRt};
    use std::time::{Duration, Instant};

    let stack_bytes = config.core_stack_bytes();
    let rt = shared.seq.sharded_rt().expect("sharded backend installed").rt(island);
    // The runtime outlives every fiber switch: it lives inside `Shared`,
    // which this launcher keeps alive until after all its fibers are done.
    let rt_ptr: *const FiberRt = rt;
    let own_cores: Vec<usize> = own.iter().map(|(c, _)| *c).collect();

    let mut fibers = Vec::with_capacity(own.len());
    for (core, worker) in own {
        let shared = Arc::clone(&shared);
        let reports = Arc::clone(&reports);
        let panics = Arc::clone(&panics);
        let params = CoreParams::of(config, core);
        let entry = Box::new(move || {
            let mut port = params.build_port(core, &shared);
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                worker(&mut port);
            }));
            let next = match result {
                Ok(()) => shared.seq.retire_fiber_target(core),
                Err(payload) => {
                    panics.lock().push(payload);
                    shared.seq.poison();
                    FiberId::Launcher
                }
            };
            reports.lock()[core] = Some(port.into_report());
            // Control never returns to this closure: drop every owned
            // handle before the final switch (see `run_cores_on_fibers`).
            drop(shared);
            drop(reports);
            drop(panics);
            // SAFETY: `rt_ptr` stays valid (see above); this fiber is
            // marked done and never resumed, and `next` is either a live
            // same-island waiter or this island's suspended launcher.
            unsafe {
                (*rt_ptr).mark_done(core);
                (*rt_ptr).switch(FiberId::Core(core), next);
            }
            unreachable!("a finished fiber must never be resumed");
        });
        let fiber = Fiber::new(stack_bytes, entry);
        rt.set_initial(core, fiber.initial_ctx());
        fibers.push(fiber);
    }

    // Start every own fiber in core order (the threaded backend's spawn
    // order); each runs until its first sequencer suspension. No token can
    // be granted anywhere before every core in the system has entered the
    // sequencer once (`running` only reaches 0 then), so the startup wave
    // runs concurrently across islands yet cannot reorder sequenced ops.
    for &core in &own_cores {
        // SAFETY: the fiber is unstarted, and only this thread ever
        // switches fibers of this island's runtime.
        unsafe { rt.switch(FiberId::Launcher, FiberId::Core(core)) };
    }

    loop {
        if own_cores.iter().all(|&c| rt.is_done(c)) {
            break;
        }
        if shared.seq.check_poison() {
            // Poison drain: resume any live fiber; its sequencer re-entry
            // observes the poison and unwinds it to done.
            let c = own_cores.iter().copied().find(|&c| !rt.is_done(c)).unwrap();
            // SAFETY: live suspended fiber of this island.
            unsafe { rt.switch(FiberId::Launcher, FiberId::Core(c)) };
            continue;
        }
        if let Some(c) = shared.seq.granted_core_on_island(island) {
            // A granted core of this island is always a live, suspended
            // waiter (it cannot retire while still holding a pending
            // grant); the `is_done` guard is pure defensive depth.
            if !rt.is_done(c) {
                // SAFETY: as above.
                unsafe { rt.switch(FiberId::Launcher, FiberId::Core(c)) };
            }
            continue;
        }
        // Nothing to run on this island: sleep until a cross-island
        // handoff (or poison) unparks us. The unpark token is sticky, so a
        // wake delivered between the checks above and the park is never
        // lost. With a watchdog armed, this launcher doubles as the
        // wall-clock stall detector (the role `enter`'s park_timeout plays
        // on the thread backend).
        match shared.seq.watchdog_config() {
            None => std::thread::park(),
            Some(wd) => {
                let before = shared.seq.liveness_snapshot();
                let window = Duration::from_millis(wd.wall_ms);
                let t0 = Instant::now();
                std::thread::park_timeout(window);
                if t0.elapsed() >= window
                    && !shared.seq.check_poison()
                    && shared.seq.liveness_snapshot() == before
                {
                    // No grant and no productive local work anywhere for a
                    // full window: the run is stuck, not slow. Poison
                    // without panicking — the drained fibers raise the
                    // panics, keeping this launcher alive to collect their
                    // reports for the diagnostic bundle.
                    shared.seq.launcher_trip();
                }
            }
        }
    }
    // Dropping `fibers` unmaps the island's stacks; all are done here.
}

/// Summary of the ULI network's activity during a run.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct UliReport {
    /// Total ULI messages (requests, responses, NACKs).
    pub messages: u64,
    /// NACKed steal requests.
    pub nacks: u64,
    /// Mean message latency in cycles.
    pub mean_latency: f64,
    /// Mean message hop count.
    pub mean_hops: f64,
    /// ULI bytes transferred.
    pub bytes: u64,
    /// Link utilization of the ULI mesh over the run, in `[0, 1]`.
    pub utilization: f64,
}

/// Everything measured during one simulated run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Name of the configuration that produced this run.
    pub config_name: String,
    /// Cycle at which the program signalled completion.
    pub completion_cycles: u64,
    /// Final local clock of each core.
    pub core_cycles: Vec<u64>,
    /// Execution-time breakdown of each core.
    pub breakdowns: Vec<TimeBreakdown>,
    /// Instructions retired by each core.
    pub instructions: Vec<u64>,
    /// Per-core memory statistics.
    pub mem_stats: Vec<CoreMemStats>,
    /// Data-OCN traffic.
    pub traffic: TrafficStats,
    /// ULI network summary.
    pub uli: UliReport,
    /// Stale reads detected (must be zero for a correct runtime).
    pub stale_reads: u64,
    /// Per-core execution traces (empty unless `SystemConfig::trace`).
    pub traces: Vec<Vec<crate::trace::TraceEvent>>,
    /// Per-core ULI protocol marks for the trace exporter's flow arrows
    /// (empty unless `SystemConfig::trace`).
    pub uli_marks: Vec<Vec<crate::trace::UliMark>>,
    /// Faults injected over the run, summed across cores (all zero with
    /// [`FaultPlan::none()`](crate::FaultPlan::none)).
    pub fault_counters: FaultCounters,
    /// Latency spikes injected on the data OCN.
    pub mesh_fault_spikes: u64,
    /// Total sequencer token grants (the unit of the watchdog budget).
    pub seq_grants: u64,
    /// Grants that took the sequencer's inline fast re-grant path (a
    /// host-performance diagnostic; has no simulated-time meaning).
    pub seq_fast_grants: u64,
    /// Conservative cross-island lookahead of the sharded backend in
    /// cycles (0 on the other backends): the bound below which no
    /// cross-island interaction can land, derived from the minimum
    /// cross-island mesh hop latency. A host-level diagnostic; the
    /// bit-exact backends never let islands run ahead, so it has no
    /// simulated-time meaning.
    pub seq_lookahead: u64,
    /// Order-sensitive hash of the sequenced-op stream (every `(time,
    /// core)` token grant, in grant order). Identical runs produce
    /// identical hashes; golden-trace tests pin this value to prove engine
    /// wall-clock optimizations are invisible to simulated results.
    pub seq_op_hash: u64,
    /// Per-core per-task attribution spans (empty unless
    /// [`SystemConfig::attr`]): each core's spans tile `[0, clock]`
    /// without gaps or overlap, each carrying the [`TimeBreakdown`] of its
    /// interval.
    pub attr_spans: Vec<Vec<crate::port::AttrSpan>>,
    /// The DRF checker's event stream, in sequenced (grant) order. Empty
    /// unless [`SystemConfig::check`] is armed: collection buffers events
    /// per core and merges them here. Under the default
    /// [`SchedulePolicy::MinCore`] the merge sorts by `(cycle, core,
    /// per-core index)`, which reproduces grant order because per-core
    /// clocks are nondecreasing and the sequencer breaks time ties by core
    /// id; under [`SchedulePolicy::Scripted`] ties may be broken against
    /// core order, so the merge instead sorts by the grant stamp each
    /// event carries in its per-core buffer.
    pub mem_events: Vec<MemEvent>,
    /// Every tie-break choice point the sequencer recorded, in grant
    /// order. Always empty under [`SchedulePolicy::MinCore`]; under
    /// [`SchedulePolicy::Scripted`] one entry per grant where two or more
    /// waiters shared the minimum time.
    pub choice_points: Vec<ChoicePoint>,
    /// Per-core flight-recorder tails (the last
    /// [`SystemConfig::flight_ring`] events per core, in chronological
    /// order; inner vectors empty when the ring is disabled). Observation
    /// only: recording never perturbs a simulated cycle.
    pub flight: Vec<Vec<FlightEvent>>,
    /// Events ever recorded on each core's ring (each `flight[i]` keeps
    /// the last `flight_ring` of them).
    pub flight_totals: Vec<u64>,
}

impl RunReport {
    /// Total instructions retired across all cores.
    pub fn total_instructions(&self) -> u64 {
        self.instructions.iter().sum()
    }

    /// Aggregate L1D hit rate over the given cores.
    pub fn l1d_hit_rate(&self, cores: &[usize]) -> f64 {
        bigtiny_coherence::aggregate(cores.iter().map(|c| &self.mem_stats[*c])).l1d_hit_rate()
    }

    /// Aggregate memory stats over the given cores.
    pub fn mem_stats_over(&self, cores: &[usize]) -> CoreMemStats {
        bigtiny_coherence::aggregate(cores.iter().map(|c| &self.mem_stats[*c]))
    }

    /// Aggregate time breakdown over the given cores.
    pub fn breakdown_over(&self, cores: &[usize]) -> TimeBreakdown {
        let mut total = TimeBreakdown::new();
        for c in cores {
            total += self.breakdowns[*c];
        }
        total
    }

    /// Total data-OCN bytes.
    pub fn total_traffic_bytes(&self) -> u64 {
        self.traffic.total_data_bytes()
    }
}

/// Runs `workers[i]` on core `i` of a system configured by `config` and
/// collects a [`RunReport`].
///
/// The simulation is deterministic: the same configuration (including its
/// seed and fault plan) and the same worker code produce identical reports.
///
/// # Panics
///
/// Panics if `workers.len() != config.num_cores()`, re-raises the first
/// panic raised by any worker, or — when the configured liveness watchdog
/// trips — panics with a message starting with
/// [`WATCHDOG_MSG`](crate::WATCHDOG_MSG) followed by a rendered
/// [`DiagnosticBundle`].
pub fn run_system(config: &SystemConfig, workers: Vec<Worker>) -> RunReport {
    assert_eq!(workers.len(), config.num_cores(), "one worker per core required");
    // Fault injection can drop ULI messages after the sender has already
    // recorded the send, which would break the checker's FIFO pairing of
    // request/response edges; chaos runs and conformance runs are
    // different experiments, so just forbid the combination.
    assert!(
        config.check == CheckMode::Off || !config.faults.is_active(),
        "DRF checking cannot be combined with fault injection"
    );
    let num_cores = config.num_cores();
    let backend = resolve_backend(config);
    #[allow(unused_mut)]
    let mut seq = Sequencer::new(num_cores);
    seq.set_policy(config.schedule.clone());
    if let Some(budget) = config.watchdog_budget {
        seq.set_watchdog(WatchdogConfig { budget, wall_ms: config.watchdog_wall_ms });
    }
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    match backend {
        Backend::Fibers => seq.set_fiber_backend(crate::fiber::FiberRt::new(num_cores)),
        Backend::Sharded => {
            let islands = config.topology().quadrant_islands(num_cores);
            // Minimum cross-island mesh latency: one cycle per hop each
            // way plus the receiving unit's cycle — the same formula the
            // ULI network charges for a `hops`-hop message.
            let lookahead = u64::from(config.topology().min_cross_island_hops(&islands)) * 2 + 1;
            seq.set_sharded_backend(crate::sequencer::ShardedRt::new(
                &islands, num_cores, lookahead,
            ));
        }
        Backend::Threads => {}
    }
    // Heartbeat arming: the live counters the ports publish into and the
    // sequencer hook that snapshots them every K grants. `None` keeps both
    // at literally zero cost (never-taken branches).
    let live = config.heartbeat.as_ref().map(|hb| {
        let live = Arc::new(LiveCounters::new(num_cores));
        seq.set_heartbeat(hb.clone(), Arc::clone(&live));
        live
    });
    let mut mem = MemorySystem::new(&config.mem_config());
    mem.set_mesh_faults(config.faults.mesh_faults());
    let shared = Arc::new(Shared {
        seq,
        state: Mutex::new(GlobalState {
            mem,
            uli: UliNetwork::new(config.topology(), num_cores),
            done: false,
            done_time: 0,
        }),
        live,
    });

    let reports: PortReports = Arc::new(Mutex::new((0..num_cores).map(|_| None).collect()));
    let panics: Panics = Arc::new(Mutex::new(Vec::new()));

    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    match backend {
        Backend::Fibers => run_cores_on_fibers(config, workers, &shared, &reports, &panics),
        Backend::Sharded => {
            run_cores_on_sharded_fibers(config, workers, &shared, &reports, &panics)
        }
        Backend::Threads => run_cores_on_threads(config, workers, &shared, &reports, &panics),
    }
    #[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
    {
        debug_assert_eq!(backend, Backend::Threads, "resolve_backend rejects fibers off-platform");
        run_cores_on_threads(config, workers, &shared, &reports, &panics);
    }

    let mut panics = std::mem::take(&mut *panics.lock());
    if !panics.is_empty() {
        // Every thread has unwound and stored its partial report, so the
        // diagnostic bundle is crash-consistent. Record it in the
        // engine-global black-box ring *before* panicking: the panic
        // payload is a rendered string, and harnesses that catch it
        // retrieve the structured bundle via `last_bundle_for` to write a
        // loadable black-box dump.
        let bundle = build_bundle(config, backend, &shared, &reports.lock());
        let watchdog = matches!(bundle.reason, PoisonReason::Watchdog { .. });
        record_bundle(bundle.clone());
        if watchdog {
            panic!("{WATCHDOG_MSG}\n{bundle}");
        }
        // Re-raise the most meaningful panic (prefer original over cascaded
        // poison panics).
        let idx = panics
            .iter()
            .position(|p| {
                p.downcast_ref::<&str>().is_none_or(|s| !s.contains(POISON_MSG))
                    && p.downcast_ref::<String>().is_none_or(|s| !s.contains(POISON_MSG))
            })
            .unwrap_or(0);
        std::panic::resume_unwind(panics.swap_remove(idx));
    }

    let reports = std::mem::take(&mut *reports.lock());
    let mut core_cycles = Vec::with_capacity(num_cores);
    let mut breakdowns = Vec::with_capacity(num_cores);
    let mut instructions = Vec::with_capacity(num_cores);
    let mut traces = Vec::with_capacity(num_cores);
    let mut uli_marks = Vec::with_capacity(num_cores);
    let mut attr_spans = Vec::with_capacity(num_cores);
    let mut flight = Vec::with_capacity(num_cores);
    let mut flight_totals = Vec::with_capacity(num_cores);
    let mut fault_counters = FaultCounters::default();
    let mut stamped_events: Vec<(u64, MemEvent)> = Vec::new();
    for r in reports {
        let r = r.expect("every worker reported");
        core_cycles.push(r.clock);
        breakdowns.push(r.breakdown);
        instructions.push(r.instructions);
        traces.push(r.trace);
        uli_marks.push(r.uli_marks);
        attr_spans.push(r.attr_spans);
        flight.push(r.flight);
        flight_totals.push(r.flight_total);
        fault_counters += r.faults;
        stamped_events.extend(r.events);
    }
    // Reconstruct sequenced order from the per-core buffers. Under
    // MinCore, per-core clocks are nondecreasing and the sequencer grants
    // the minimum `(time, core)`, so a stable `(cycle, core)` sort (which
    // preserves each core's emission order for equal keys) replays grant
    // order exactly. Under a Scripted policy ties may be granted against
    // core order, so `(cycle, core)` no longer reconstructs grant order;
    // sort by the grant stamp instead (unique per sequenced op, with a
    // core's annotation events sharing its op's stamp and kept in
    // emission order by sort stability).
    match config.schedule {
        SchedulePolicy::MinCore => stamped_events.sort_by_key(|(_, e)| (e.cycle, e.core)),
        SchedulePolicy::Scripted(_) => stamped_events.sort_by_key(|&(stamp, _)| stamp),
    }
    let mem_events: Vec<MemEvent> = stamped_events.into_iter().map(|(_, e)| e).collect();

    let st = shared.state.lock();
    let completion = if st.done_time > 0 {
        st.done_time
    } else {
        core_cycles.iter().copied().max().unwrap_or(0)
    };
    let uli_links = {
        let r = config.topology().rows() as u64;
        let c = config.topology().cols() as u64;
        2 * (r * (c - 1) + c * (r - 1)).max(1)
    };
    let uli = UliReport {
        messages: st.uli.message_count(),
        nacks: st.uli.nack_count(),
        mean_latency: st.uli.mean_latency(),
        mean_hops: st.uli.mean_hops(),
        bytes: st.uli.stats().bytes(bigtiny_mesh::TrafficClass::Uli),
        utilization: st.uli.stats().utilization(completion.max(1), uli_links),
    };
    RunReport {
        config_name: config.name.clone(),
        completion_cycles: completion,
        core_cycles,
        breakdowns,
        instructions,
        mem_stats: st.mem.all_stats().to_vec(),
        traffic: *st.mem.traffic(),
        uli,
        stale_reads: st.mem.total_stale_reads(),
        traces,
        uli_marks,
        attr_spans,
        fault_counters,
        mesh_fault_spikes: st.mem.mesh_fault_spikes(),
        seq_grants: shared.seq.total_grants(),
        seq_fast_grants: shared.seq.fast_grants(),
        seq_lookahead: shared.seq.sharded_lookahead(),
        seq_op_hash: shared.seq.op_hash(),
        mem_events,
        choice_points: shared.seq.choice_points(),
        flight,
        flight_totals,
    }
}

/// Assembles the crash-consistent diagnostic bundle after all core threads
/// have joined.
fn build_bundle(
    config: &SystemConfig,
    backend: Backend,
    shared: &Shared,
    reports: &[Option<PortReport>],
) -> DiagnosticBundle {
    let st = shared.state.lock();
    let seq_diag = shared.seq.core_diag();
    let cores = reports
        .iter()
        .enumerate()
        .filter_map(|(core, r)| {
            r.as_ref().map(|r| {
                DiagnosticBundle::core_diag(core, r, seq_diag[core], st.uli.unit_state(core))
            })
        })
        .collect();
    DiagnosticBundle {
        reason: shared.seq.poison_reason().unwrap_or(PoisonReason::WorkerPanic),
        config_name: config.name.clone(),
        backend: backend.label().to_owned(),
        fault_spec: config.faults.to_spec(),
        cores,
        uli_messages: st.uli.message_count(),
        uli_nacks: st.uli.nack_count(),
        total_grants: shared.seq.total_grants(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{AddrSpace, ShScalar, ShVec};
    use bigtiny_coherence::Protocol;
    use bigtiny_mesh::UliOutcome;

    fn small_config(tiny_proto: Protocol) -> SystemConfig {
        let mut c = SystemConfig::big_tiny(
            "test4",
            bigtiny_mesh::MeshConfig::with_topology(bigtiny_mesh::Topology::new(2, 2)),
            1,
            3,
            tiny_proto,
        );
        c.seed = 1234;
        c
    }

    /// Four cores sum disjoint slices of a shared vector.
    fn parallel_sum(tiny_proto: Protocol) -> RunReport {
        parallel_sum_on(small_config(tiny_proto))
    }

    fn parallel_sum_on(config: SystemConfig) -> RunReport {
        let mut space = AddrSpace::new();
        let n = 256;
        let data = Arc::new(ShVec::from_vec(&mut space, (0..n as u64).collect()));
        let out = Arc::new(ShVec::new(&mut space, 4, 0u64));
        let done = Arc::new(ShScalar::new(&mut space, 0u64));

        let mut workers: Vec<Worker> = Vec::new();
        for core in 0..4usize {
            let data = Arc::clone(&data);
            let out = Arc::clone(&out);
            let done = Arc::clone(&done);
            workers.push(Box::new(move |port| {
                let chunk = n / 4;
                let mut sum = 0u64;
                for i in core * chunk..(core + 1) * chunk {
                    sum += data.read(port, i);
                    port.advance(2);
                }
                out.write(port, core, sum);
                port.flush_cache();
                done.amo(port, |d| *d += 1);
                if core == 0 {
                    // Main core waits for everyone then signals completion.
                    while done.amo(port, |d| *d) < 4 {
                        port.idle(20);
                    }
                    port.set_done();
                }
            }));
        }
        let report = run_system(&config, workers);
        let total: u64 = out.snapshot().iter().sum();
        assert_eq!(total, (0..n as u64).sum::<u64>(), "functional result correct");
        report
    }

    #[test]
    fn parallel_sum_runs_on_all_protocols() {
        for proto in [Protocol::Mesi, Protocol::DeNovo, Protocol::GpuWt, Protocol::GpuWb] {
            let r = parallel_sum(proto);
            assert!(r.completion_cycles > 0);
            assert!(r.total_instructions() > 4 * 64 * 2);
            assert!(r.traffic.total_data_bytes() > 0);
        }
    }

    #[test]
    fn simulation_is_deterministic() {
        let a = parallel_sum(Protocol::GpuWb);
        let b = parallel_sum(Protocol::GpuWb);
        assert_eq!(a.completion_cycles, b.completion_cycles);
        assert_eq!(a.core_cycles, b.core_cycles);
        assert_eq!(a.instructions, b.instructions);
        assert_eq!(a.traffic, b.traffic);
    }

    /// The sharded backend must be invisible to simulated results: on a
    /// 2x2 mesh every core is its own island, so every handoff crosses an
    /// island boundary, making this the densest cross-island stress the
    /// small configuration can express.
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    #[test]
    fn sharded_backend_matches_threads_bit_for_bit() {
        let run = |backend: ExecBackend| {
            let mut config = small_config(Protocol::GpuWb);
            config.backend = backend;
            parallel_sum_on(config)
        };
        let a = run(ExecBackend::Threads);
        let b = run(ExecBackend::ShardedFibers);
        assert_eq!(a.seq_op_hash, b.seq_op_hash, "sequenced-op streams must be identical");
        assert_eq!(a.completion_cycles, b.completion_cycles);
        assert_eq!(a.core_cycles, b.core_cycles);
        assert_eq!(a.instructions, b.instructions);
        assert_eq!(a.traffic, b.traffic);
        // 2x2 quadrants are adjacent tiles: 1 hop -> 1*2+1 cycles.
        assert_eq!(b.seq_lookahead, 3);
        assert_eq!(a.seq_lookahead, 0, "thread backend reports no lookahead");
    }

    /// A worker panic under the sharded backend must drain every island
    /// and re-raise the original panic, exactly like the other backends.
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    #[test]
    fn sharded_worker_panic_propagates() {
        let mut config = small_config(Protocol::Mesi);
        config.backend = ExecBackend::ShardedFibers;
        let mut workers: Vec<Worker> = Vec::new();
        for core in 0..4usize {
            workers.push(Box::new(move |port| {
                for t in 0..1000 {
                    port.idle(10);
                    if core == 2 && t == 5 {
                        panic!("sharded worker exploded");
                    }
                }
            }));
        }
        let r =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_system(&config, workers)));
        let err = r.expect_err("panic must propagate");
        let msg = err
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("sharded worker exploded"), "got: {msg}");
    }

    #[test]
    fn worker_panic_propagates() {
        let config = small_config(Protocol::Mesi);
        let mut workers: Vec<Worker> = Vec::new();
        for core in 0..4usize {
            workers.push(Box::new(move |port| {
                let mut t = 0;
                loop {
                    port.idle(10);
                    t += 1;
                    if core == 2 && t == 5 {
                        panic!("worker exploded");
                    }
                    if t > 1000 {
                        return;
                    }
                }
            }));
        }
        let r =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_system(&config, workers)));
        let err = r.expect_err("panic must propagate");
        let msg = err
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("worker exploded"), "got: {msg}");
    }

    /// A two-party ULI steal handshake through the engine.
    #[test]
    fn uli_request_response_round_trip() {
        let config = small_config(Protocol::GpuWb);
        let mut space = AddrSpace::new();
        let mailbox = Arc::new(ShVec::new(&mut space, 4, 0u64));

        let mut workers: Vec<Worker> = Vec::new();
        for core in 0..4usize {
            let mailbox = Arc::clone(&mailbox);
            workers.push(Box::new(move |port| {
                match core {
                    1 => {
                        // Victim: install a handler that writes to the
                        // thief's mailbox and responds; then compute.
                        let mb = Arc::clone(&mailbox);
                        port.set_uli_handler(Box::new(move |p, msg| {
                            mb.write(p, msg.from, 0xfeed);
                            // Figure 3(c) line 52: flush after writing the
                            // stolen task so the thief sees it.
                            p.flush_cache();
                            p.uli_send_response(msg.from, 1);
                        }));
                        port.uli_enable();
                        for _ in 0..200 {
                            port.advance(5);
                            port.load(bigtiny_coherence::Addr(0x9000));
                        }
                        port.uli_disable();
                    }
                    2 => {
                        // Thief: wait a bit, then steal from core 1.
                        port.idle(50);
                        let out = port.uli_send_request(1, 42);
                        assert_eq!(out, UliOutcome::Sent);
                        let resp = loop {
                            if let Some(m) = port.uli_poll_response() {
                                break m;
                            }
                            port.idle(4);
                        };
                        assert_eq!(resp.from, 1);
                        assert_eq!(resp.payload, 1);
                        let got = mailbox.read(port, 2);
                        assert_eq!(got, 0xfeed, "victim delivered through shared memory");
                        port.set_done();
                    }
                    _ => {
                        port.idle(1);
                    }
                }
            }));
        }
        let r = run_system(&config, workers);
        assert!(r.uli.messages >= 2);
        assert_eq!(r.stale_reads, 0);
    }

    #[test]
    fn uli_nack_when_disabled() {
        let config = small_config(Protocol::GpuWb);
        let mut workers: Vec<Worker> = Vec::new();
        for core in 0..4usize {
            workers.push(Box::new(move |port| {
                if core == 2 {
                    port.idle(10);
                    let out = port.uli_send_request(3, 0);
                    assert!(matches!(out, UliOutcome::Nack { .. }), "victim never enabled ULI");
                    port.set_done();
                } else {
                    port.idle(500);
                }
            }));
        }
        let r = run_system(&config, workers);
        assert_eq!(r.uli.nacks, 1);
    }

    #[test]
    fn completion_time_is_done_time_not_stragglers() {
        let config = small_config(Protocol::Mesi);
        let mut workers: Vec<Worker> = Vec::new();
        for core in 0..4usize {
            workers.push(Box::new(move |port| {
                if core == 0 {
                    port.idle(100);
                    port.set_done();
                } else {
                    port.idle(10_000); // stragglers idle long past completion
                }
            }));
        }
        let r = run_system(&config, workers);
        assert!(
            r.completion_cycles >= 100 && r.completion_cycles < 1000,
            "{}",
            r.completion_cycles
        );
    }
}
