//! Deterministic min-time token sequencing of simulated cores.
//!
//! Each simulated core runs on its own OS thread so that arbitrarily nested
//! task execution keeps a real call stack, but **at most one core thread
//! executes at a time**: before any operation that touches shared simulated
//! state, a core enters the sequencer with its local clock and is granted
//! the token only when it holds the globally minimum `(time, core_id)`.
//! This makes the whole simulation a single logical thread of execution in
//! simulated-time order — bit-for-bit deterministic and free of data races
//! by construction.

use parking_lot::{Condvar, Mutex};
use std::collections::BTreeSet;

#[derive(Debug)]
struct Inner {
    /// Cores blocked in `enter`, keyed by (time, core) for min dispatch.
    waiting: BTreeSet<(u64, usize)>,
    /// Cores currently executing user code (not waiting, not retired).
    running: usize,
    /// Core currently granted the token (inside its sequenced section or
    /// running user code after `leave`).
    current: Option<usize>,
    poisoned: bool,
}

/// The token scheduler. See the module docs.
#[derive(Debug)]
pub struct Sequencer {
    inner: Mutex<Inner>,
    cvs: Box<[Condvar]>,
}

impl Sequencer {
    /// Creates a sequencer for `num_cores` cores, all initially running.
    pub fn new(num_cores: usize) -> Self {
        assert!(num_cores > 0);
        Sequencer {
            inner: Mutex::new(Inner {
                waiting: BTreeSet::new(),
                running: num_cores,
                current: None,
                poisoned: false,
            }),
            cvs: (0..num_cores).map(|_| Condvar::new()).collect(),
        }
    }

    fn dispatch(&self, inner: &mut Inner) {
        debug_assert!(inner.current.is_none());
        if let Some(&(_, core)) = inner.waiting.iter().next() {
            inner.current = Some(core);
            self.cvs[core].notify_one();
        }
    }

    /// Blocks until `core` (at simulated time `time`) holds the global
    /// minimum and is granted the token.
    ///
    /// # Panics
    ///
    /// Panics if the simulation was poisoned by a panic on another core.
    pub fn enter(&self, core: usize, time: u64) {
        let mut g = self.inner.lock();
        assert!(!g.poisoned, "simulation poisoned by a panic on another core");
        g.waiting.insert((time, core));
        g.running -= 1;
        if g.running == 0 {
            self.dispatch(&mut g);
        }
        while g.current != Some(core) {
            self.cvs[core].wait(&mut g);
            assert!(!g.poisoned, "simulation poisoned by a panic on another core");
        }
        let removed = g.waiting.remove(&(time, core));
        debug_assert!(removed, "granted core must be in the waiting set");
        g.running += 1;
    }

    /// Releases the token after a sequenced section. The core keeps running
    /// user code exclusively until its next `enter`.
    pub fn leave(&self, core: usize) {
        let mut g = self.inner.lock();
        if g.poisoned {
            return;
        }
        debug_assert_eq!(g.current, Some(core), "leave() by a core that does not hold the token");
        g.current = None;
    }

    /// Removes `core` from the simulation (its worker returned).
    pub fn retire(&self, _core: usize) {
        let mut g = self.inner.lock();
        if g.poisoned {
            return;
        }
        g.running -= 1;
        if g.running == 0 && g.current.is_none() {
            self.dispatch(&mut g);
        }
    }

    /// Marks the simulation as failed (a core panicked) and wakes every
    /// waiting core so its `enter` panics too, unwinding all threads.
    pub fn poison(&self) {
        let mut g = self.inner.lock();
        g.poisoned = true;
        for cv in self.cvs.iter() {
            cv.notify_all();
        }
    }

    /// Whether the simulation has been poisoned.
    #[cfg(test)]
    pub fn is_poisoned(&self) -> bool {
        self.inner.lock().poisoned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    /// Three cores perform interleaved sequenced ops; the observed global
    /// order must be exactly ascending (time, core).
    #[test]
    fn grants_follow_time_order() {
        let seq = Arc::new(Sequencer::new(3));
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for core in 0..3usize {
            let seq = Arc::clone(&seq);
            let log = Arc::clone(&log);
            handles.push(std::thread::spawn(move || {
                let mut t = core as u64; // staggered start times
                for _ in 0..50 {
                    seq.enter(core, t);
                    log.lock().push((t, core));
                    seq.leave(core);
                    t += 3; // all cores advance at the same rate
                }
                seq.retire(core);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let log = log.lock();
        assert_eq!(log.len(), 150);
        let mut sorted = log.clone();
        sorted.sort();
        assert_eq!(*log, sorted, "grants must be in global (time, core) order");
    }

    #[test]
    fn single_core_never_blocks() {
        let seq = Sequencer::new(1);
        for t in 0..10 {
            seq.enter(0, t);
            seq.leave(0);
        }
        seq.retire(0);
    }

    #[test]
    fn retire_unblocks_waiters() {
        let seq = Arc::new(Sequencer::new(2));
        let seq2 = Arc::clone(&seq);
        let done = Arc::new(AtomicUsize::new(0));
        let done2 = Arc::clone(&done);
        let h = std::thread::spawn(move || {
            // Core 1 waits at a later time than core 0 will ever reach; it
            // can only be granted after core 0 retires.
            seq2.enter(1, 1_000_000);
            done2.store(1, Ordering::SeqCst);
            seq2.leave(1);
            seq2.retire(1);
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(done.load(Ordering::SeqCst), 0, "core 1 must still be waiting");
        seq.retire(0);
        h.join().unwrap();
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn poison_unblocks_with_panic() {
        let seq = Arc::new(Sequencer::new(2));
        let seq2 = Arc::clone(&seq);
        let h = std::thread::spawn(move || {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                seq2.enter(1, 42);
            }));
            assert!(r.is_err(), "poisoned enter must panic");
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        seq.poison();
        h.join().unwrap();
        assert!(seq.is_poisoned());
    }

    #[test]
    fn ties_break_by_core_id() {
        let seq = Arc::new(Sequencer::new(2));
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for core in [1usize, 0usize] {
            let seq = Arc::clone(&seq);
            let log = Arc::clone(&log);
            handles.push(std::thread::spawn(move || {
                seq.enter(core, 5);
                log.lock().push(core);
                seq.leave(core);
                seq.retire(core);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*log.lock(), vec![0, 1]);
    }
}
