//! Deterministic min-time token sequencing of simulated cores.
//!
//! Each simulated core runs on its own OS thread so that arbitrarily nested
//! task execution keeps a real call stack, but **at most one core thread
//! executes at a time**: before any operation that touches shared simulated
//! state, a core enters the sequencer with its local clock and is granted
//! the token only when it holds the globally minimum `(time, core_id)`.
//! This makes the whole simulation a single logical thread of execution in
//! simulated-time order — bit-for-bit deterministic and free of data races
//! by construction.
//!
//! The sequencer doubles as the attachment point of the liveness
//! [`watchdog`](crate::watchdog): every grant is counted, and if too many
//! grants pass without a progress mark (or a parked core observes no grant
//! activity at all for the wall-clock fallback window) the sequencer is
//! poisoned with [`PoisonReason::Watchdog`] and every core unwinds.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

use crate::sync::{Condvar, Mutex};
use crate::watchdog::{PoisonReason, SeqCoreDiag, WatchdogConfig, WATCHDOG_MSG};

pub(crate) const POISON_MSG: &str = "simulation poisoned by a panic on another core";

#[derive(Debug, Default, Clone, Copy)]
struct CoreState {
    grants: u64,
    last_time: u64,
    retired: bool,
}

#[derive(Debug)]
struct Inner {
    /// Cores blocked in `enter`, keyed by (time, core) for min dispatch.
    waiting: BTreeSet<(u64, usize)>,
    /// Cores currently executing user code (not waiting, not retired).
    running: usize,
    /// Core currently granted the token (inside its sequenced section or
    /// running user code after `leave`).
    current: Option<usize>,
    poisoned: bool,
    reason: Option<PoisonReason>,
    cores: Vec<CoreState>,
}

/// The token scheduler. See the module docs.
#[derive(Debug)]
pub struct Sequencer {
    inner: Mutex<Inner>,
    cvs: Box<[Condvar]>,
    watchdog: Option<WatchdogConfig>,
    /// Grants since the last progress mark (watchdog budget counter).
    since_progress: AtomicU64,
    /// Total grants over the run (wall-clock stall discriminator + stats).
    total_grants: AtomicU64,
    /// Lock-free mirror of `Inner::poisoned`, so cores spinning in purely
    /// local operations (which never take the sequencer lock) can still
    /// observe the poison and unwind.
    poison_flag: AtomicBool,
}

impl Sequencer {
    /// Creates a sequencer for `num_cores` cores, all initially running.
    pub fn new(num_cores: usize) -> Self {
        assert!(num_cores > 0);
        Sequencer {
            inner: Mutex::new(Inner {
                waiting: BTreeSet::new(),
                running: num_cores,
                current: None,
                poisoned: false,
                reason: None,
                cores: vec![CoreState::default(); num_cores],
            }),
            cvs: (0..num_cores).map(|_| Condvar::new()).collect(),
            watchdog: None,
            since_progress: AtomicU64::new(0),
            total_grants: AtomicU64::new(0),
            poison_flag: AtomicBool::new(false),
        }
    }

    /// Arms the liveness watchdog. Must be called before core threads
    /// start.
    pub fn set_watchdog(&mut self, config: WatchdogConfig) {
        assert!(config.budget > 0, "watchdog budget must be positive");
        self.watchdog = Some(config);
    }

    fn dispatch(&self, inner: &mut Inner) {
        debug_assert!(inner.current.is_none());
        if let Some(&(_, core)) = inner.waiting.iter().next() {
            inner.current = Some(core);
            self.cvs[core].notify_one();
        }
    }

    /// Poisons with a watchdog reason and panics on the calling thread.
    fn trip(&self, g: &mut Inner, core: usize, time: u64) -> ! {
        g.poisoned = true;
        g.reason.get_or_insert(PoisonReason::Watchdog { core, time });
        self.poison_flag.store(true, Ordering::Relaxed);
        for cv in self.cvs.iter() {
            cv.notify_all();
        }
        panic!("{WATCHDOG_MSG} (tripped on core {core} at cycle {time})");
    }

    /// Blocks until `core` (at simulated time `time`) holds the global
    /// minimum and is granted the token.
    ///
    /// # Panics
    ///
    /// Panics if the simulation was poisoned by a panic on another core, or
    /// if the armed watchdog finds the simulation stuck.
    pub fn enter(&self, core: usize, time: u64) {
        let mut g = self.inner.lock();
        assert!(!g.poisoned, "{}", POISON_MSG);
        g.waiting.insert((time, core));
        g.running -= 1;
        if g.running == 0 {
            self.dispatch(&mut g);
        }
        while g.current != Some(core) {
            match self.watchdog {
                None => self.cvs[core].wait(&mut g),
                Some(wd) => {
                    let before = self.total_grants.load(Ordering::Relaxed);
                    let timed_out =
                        self.cvs[core].wait_for(&mut g, Duration::from_millis(wd.wall_ms));
                    if timed_out
                        && !g.poisoned
                        && g.current != Some(core)
                        && self.total_grants.load(Ordering::Relaxed) == before
                    {
                        // Nothing was granted anywhere for the whole window:
                        // the token holder is stuck outside the sequencer.
                        self.trip(&mut g, core, time);
                    }
                }
            }
            assert!(!g.poisoned, "{}", POISON_MSG);
        }
        let removed = g.waiting.remove(&(time, core));
        debug_assert!(removed, "granted core must be in the waiting set");
        g.running += 1;
        g.cores[core].grants += 1;
        g.cores[core].last_time = time;
        self.total_grants.fetch_add(1, Ordering::Relaxed);
        if let Some(wd) = self.watchdog {
            let since = self.since_progress.fetch_add(1, Ordering::Relaxed) + 1;
            if since > wd.budget {
                self.trip(&mut g, core, time);
            }
        }
    }

    /// Releases the token after a sequenced section. The core keeps running
    /// user code exclusively until its next `enter`.
    pub fn leave(&self, core: usize) {
        let mut g = self.inner.lock();
        if g.poisoned {
            return;
        }
        debug_assert_eq!(g.current, Some(core), "leave() by a core that does not hold the token");
        g.current = None;
    }

    /// Removes `core` from the simulation (its worker returned).
    pub fn retire(&self, core: usize) {
        let mut g = self.inner.lock();
        g.cores[core].retired = true;
        if g.poisoned {
            return;
        }
        g.running -= 1;
        if g.running == 0 && g.current.is_none() {
            self.dispatch(&mut g);
        }
    }

    /// Resets the watchdog's no-progress counter. Called by the runtime
    /// whenever real forward progress happens (a task ran, a steal
    /// completed, completion was signalled). Free when no watchdog is
    /// armed.
    pub fn mark_progress(&self) {
        if self.watchdog.is_some() {
            self.since_progress.store(0, Ordering::Relaxed);
        }
    }

    /// Total token grants so far.
    pub fn total_grants(&self) -> u64 {
        self.total_grants.load(Ordering::Relaxed)
    }

    /// Marks the simulation as failed (a core panicked) and wakes every
    /// waiting core so its `enter` panics too, unwinding all threads.
    pub fn poison(&self) {
        let mut g = self.inner.lock();
        g.poisoned = true;
        g.reason.get_or_insert(PoisonReason::WorkerPanic);
        self.poison_flag.store(true, Ordering::Relaxed);
        for cv in self.cvs.iter() {
            cv.notify_all();
        }
    }

    /// Lock-free poison check for hot purely-local paths (see
    /// [`poison_flag`](Self::poison_flag) on the field). A core that only
    /// burns local cycles between sequenced operations polls this so a
    /// poisoned run unwinds it too instead of letting it spin forever.
    pub(crate) fn check_poison(&self) -> bool {
        self.poison_flag.load(Ordering::Relaxed)
    }

    /// Why the simulation was poisoned (`None` if it was not).
    pub fn poison_reason(&self) -> Option<PoisonReason> {
        self.inner.lock().reason
    }

    /// Whether the simulation has been poisoned.
    #[cfg(test)]
    pub fn is_poisoned(&self) -> bool {
        self.inner.lock().poisoned
    }

    /// Per-core sequencer diagnostics (for the crash bundle).
    pub fn core_diag(&self) -> Vec<SeqCoreDiag> {
        let g = self.inner.lock();
        let waiting: std::collections::HashMap<usize, u64> =
            g.waiting.iter().map(|&(t, c)| (c, t)).collect();
        g.cores
            .iter()
            .enumerate()
            .map(|(core, s)| SeqCoreDiag {
                waiting_at: waiting.get(&core).copied(),
                grants: s.grants,
                last_time: s.last_time,
                retired: s.retired,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    /// Three cores perform interleaved sequenced ops; the observed global
    /// order must be exactly ascending (time, core).
    #[test]
    fn grants_follow_time_order() {
        let seq = Arc::new(Sequencer::new(3));
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for core in 0..3usize {
            let seq = Arc::clone(&seq);
            let log = Arc::clone(&log);
            handles.push(std::thread::spawn(move || {
                let mut t = core as u64; // staggered start times
                for _ in 0..50 {
                    seq.enter(core, t);
                    log.lock().push((t, core));
                    seq.leave(core);
                    t += 3; // all cores advance at the same rate
                }
                seq.retire(core);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let log = log.lock();
        assert_eq!(log.len(), 150);
        let mut sorted = log.clone();
        sorted.sort();
        assert_eq!(*log, sorted, "grants must be in global (time, core) order");
    }

    #[test]
    fn single_core_never_blocks() {
        let seq = Sequencer::new(1);
        for t in 0..10 {
            seq.enter(0, t);
            seq.leave(0);
        }
        seq.retire(0);
    }

    #[test]
    fn retire_unblocks_waiters() {
        let seq = Arc::new(Sequencer::new(2));
        let seq2 = Arc::clone(&seq);
        let done = Arc::new(AtomicUsize::new(0));
        let done2 = Arc::clone(&done);
        let h = std::thread::spawn(move || {
            // Core 1 waits at a later time than core 0 will ever reach; it
            // can only be granted after core 0 retires.
            seq2.enter(1, 1_000_000);
            done2.store(1, Ordering::SeqCst);
            seq2.leave(1);
            seq2.retire(1);
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(done.load(Ordering::SeqCst), 0, "core 1 must still be waiting");
        seq.retire(0);
        h.join().unwrap();
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn poison_unblocks_with_panic() {
        let seq = Arc::new(Sequencer::new(2));
        let seq2 = Arc::clone(&seq);
        let h = std::thread::spawn(move || {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                seq2.enter(1, 42);
            }));
            assert!(r.is_err(), "poisoned enter must panic");
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        seq.poison();
        h.join().unwrap();
        assert!(seq.is_poisoned());
        assert_eq!(seq.poison_reason(), Some(PoisonReason::WorkerPanic));
    }

    #[test]
    fn ties_break_by_core_id() {
        let seq = Arc::new(Sequencer::new(2));
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for core in [1usize, 0usize] {
            let seq = Arc::clone(&seq);
            let log = Arc::clone(&log);
            handles.push(std::thread::spawn(move || {
                seq.enter(core, 5);
                log.lock().push(core);
                seq.leave(core);
                seq.retire(core);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*log.lock(), vec![0, 1]);
    }

    #[test]
    fn watchdog_trips_on_grant_budget() {
        let mut seq = Sequencer::new(1);
        seq.set_watchdog(WatchdogConfig { budget: 10, wall_ms: 60_000 });
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            for t in 0..100 {
                seq.enter(0, t);
                seq.leave(0);
            }
        }));
        let err = r.expect_err("budget of 10 must trip within 100 grants");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains(WATCHDOG_MSG), "got: {msg}");
        assert!(matches!(seq.poison_reason(), Some(PoisonReason::Watchdog { core: 0, .. })));
    }

    #[test]
    fn progress_marks_keep_watchdog_quiet() {
        let mut seq = Sequencer::new(1);
        seq.set_watchdog(WatchdogConfig { budget: 10, wall_ms: 60_000 });
        for t in 0..100 {
            seq.enter(0, t);
            seq.leave(0);
            if t % 5 == 0 {
                seq.mark_progress();
            }
        }
        seq.retire(0);
        assert!(!seq.is_poisoned());
        assert_eq!(seq.total_grants(), 100);
    }

    #[test]
    fn wall_clock_fallback_trips_when_nothing_is_granted() {
        let mut seq = Sequencer::new(2);
        seq.set_watchdog(WatchdogConfig { budget: 1_000_000, wall_ms: 30 });
        let seq = Arc::new(seq);
        let seq2 = Arc::clone(&seq);
        // Core 1 parks; core 0 never enters or retires (simulating a core
        // stuck in host-level code while holding the logical token).
        let h = std::thread::spawn(move || {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                seq2.enter(1, 0);
            }));
            assert!(r.is_err(), "stalled run must trip the wall-clock fallback");
        });
        h.join().unwrap();
        assert!(matches!(seq.poison_reason(), Some(PoisonReason::Watchdog { .. })));
    }

    #[test]
    fn core_diag_reflects_state() {
        let seq = Sequencer::new(2);
        // Core 1 retires first so core 0's enter can be granted.
        seq.retire(1);
        seq.enter(0, 7);
        seq.leave(0);
        let d = seq.core_diag();
        assert_eq!(d[0].grants, 1);
        assert_eq!(d[0].last_time, 7);
        assert!(!d[0].retired);
        assert!(d[1].retired);
    }
}
