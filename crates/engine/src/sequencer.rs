//! Deterministic min-time token sequencing of simulated cores.
//!
//! Each simulated core runs on its own OS thread so that arbitrarily nested
//! task execution keeps a real call stack, but **at most one core thread
//! executes at a time**: before any operation that touches shared simulated
//! state, a core enters the sequencer with its local clock and is granted
//! the token only when it holds the globally minimum `(time, core_id)`.
//! This makes the whole simulation a single logical thread of execution in
//! simulated-time order — bit-for-bit deterministic and free of data races
//! by construction.
//!
//! The sequencer doubles as the attachment point of the liveness
//! [`watchdog`](crate::watchdog): every grant is counted, and if too many
//! grants pass without a progress mark (or a parked core observes no grant
//! activity at all for the wall-clock fallback window) the sequencer is
//! poisoned with [`PoisonReason::Watchdog`] and every core unwinds.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
use crate::fiber::{FiberId, FiberRt};
use crate::flight::{CoreBeat, Heartbeat, HeartbeatSnap, LiveCounters};
use crate::sync::Mutex;
use crate::watchdog::{PoisonReason, SeqCoreDiag, WatchdogConfig, WATCHDOG_MSG};

pub(crate) const POISON_MSG: &str = "simulation poisoned by a panic on another core";

#[derive(Debug, Default, Clone, Copy)]
struct CoreState {
    grants: u64,
    last_time: u64,
    retired: bool,
}

/// One recorded grant where ≥ 2 waiters shared the minimum time — a point
/// where the schedule could legally have gone more than one way. Recorded
/// only under [`SchedulePolicy::Scripted`]; the schedule-space explorer
/// enumerates alternatives by replaying a prefix of `chosen` indices with
/// the last one flipped.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ChoicePoint {
    /// The tied minimum time.
    pub time: u64,
    /// The tied cores, in ascending core-id order.
    pub candidates: Vec<usize>,
    /// Index into `candidates` that was granted (what the script chose,
    /// clamped to the candidate range; 0 when the script was exhausted).
    pub chosen: u32,
}

/// Scripted tie-break replay state (present only under
/// [`SchedulePolicy::Scripted`]).
#[derive(Debug)]
struct ScriptState {
    /// The choice sequence being replayed.
    script: Vec<u32>,
    /// Next script entry to consume.
    pos: usize,
    /// Every tie encountered, in grant order.
    choices: Vec<ChoicePoint>,
}

#[derive(Debug)]
struct Inner {
    /// Cores blocked in `enter`, keyed by (time, core) for min dispatch.
    waiting: BTreeSet<(u64, usize)>,
    /// Cores currently executing user code (not waiting, not retired).
    running: usize,
    /// Core currently granted the token (inside its sequenced section or
    /// running user code after `leave`).
    current: Option<usize>,
    poisoned: bool,
    reason: Option<PoisonReason>,
    cores: Vec<CoreState>,
    /// OS thread driving each core, registered on the core's first `enter`.
    /// Token handoff uses `Thread::unpark` *after* the sequencer lock is
    /// released: waking a core through a condvar while still holding the
    /// lock made the woken thread contend on it (an extra futex round trip
    /// and context switch per handoff on a loaded host).
    threads: Vec<Option<std::thread::Thread>>,
    /// Order-sensitive FNV-1a fold of every `(time, core)` grant: the
    /// fingerprint of the sequenced-op stream. Golden-trace tests pin this
    /// to prove engine optimizations never reorder or change a single
    /// simulated operation.
    op_hash: u64,
    /// Scripted tie-break state. `None` under [`SchedulePolicy::MinCore`]:
    /// the default policy takes the plain minimum-waiter path, records
    /// nothing, and costs nothing.
    script: Option<ScriptState>,
}

use crate::config::SchedulePolicy;

use crate::hash::{fold_u64, FNV_OFFSET};

/// Folds one `(time, core)` grant into the op-stream hash.
#[inline]
fn fold_grant(h: u64, time: u64, core: usize) -> u64 {
    fold_u64(fold_u64(h, time), core as u64)
}

/// The token scheduler. See the module docs.
#[derive(Debug)]
pub struct Sequencer {
    inner: Mutex<Inner>,
    watchdog: Option<WatchdogConfig>,
    /// Grants since the last progress mark (watchdog budget counter).
    since_progress: AtomicU64,
    /// Total grants over the run (wall-clock stall discriminator + stats).
    total_grants: AtomicU64,
    /// Grants taken through the inline fast re-grant path (no waiting-set
    /// churn, no condvar). Diagnostic for the perf harness: fast-path hit
    /// rate is the fraction of sequenced ops that avoid the parked path.
    fast_grants: AtomicU64,
    /// Host-level liveness ticks from purely local *productive* work
    /// (compute/memory charging between sequenced ops). Only bumped while a
    /// watchdog is armed. The wall-clock fallback requires *both* this and
    /// `total_grants` to stand still for a full window before poisoning, so
    /// a slow-but-progressing run on an overloaded host (long local
    /// compute, no grants) is never killed. Idle charges deliberately do
    /// not count: an idle-spinning core is waiting on sequenced state,
    /// which cannot change without a grant, so idle loops with zero grants
    /// are a real deadlock and must still trip.
    activity: AtomicU64,
    /// Lock-free mirror of `Inner::poisoned`, so cores spinning in purely
    /// local operations (which never take the sequencer lock) can still
    /// observe the poison and unwind.
    poison_flag: AtomicBool,
    /// Fiber-backend contexts: when set, cores are stackful fibers on one
    /// OS thread and a blocked `enter` *switches stacks* to the dispatched
    /// core instead of parking — no futex, no kernel context switch. The
    /// grant-selection logic is shared with the thread backend, so both
    /// produce the identical sequenced-op stream (pinned by the golden
    /// hashes). Mutually exclusive with the watchdog: its wall-clock
    /// fallback needs a second runnable thread.
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    fiber: Option<FiberRt>,
    /// Sharded-backend contexts: cores are fibers partitioned into mesh
    /// islands, each island driven by its own OS thread (see
    /// [`ShardedRt`]). Intra-island handoffs are user-space switches;
    /// cross-island handoffs unpark the target island's launcher thread.
    /// Grant selection is still the single global `(time, core)` minimum,
    /// so the op stream is identical to both other backends.
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    sharded: Option<ShardedRt>,
    /// Heartbeat hook: every `heartbeat.every` grants the granting core
    /// emits a [`HeartbeatSnap`] *after* releasing the sequencer lock (the
    /// sink may do I/O). `None` is zero-cost: one never-taken branch in
    /// `record_grant`.
    heartbeat: Option<HeartbeatHook>,
}

/// Installed heartbeat state: the user's cadence + sink plus the live
/// counters the ports publish into.
#[derive(Debug)]
struct HeartbeatHook {
    config: Heartbeat,
    live: Arc<LiveCounters>,
}

/// Runtime state of the sharded fiber backend: the island partition and
/// one [`FiberRt`] per island.
///
/// Unlike the single-thread fiber backend, each island's `FiberRt` is
/// touched only by that island's OS thread (its launcher and its own
/// fibers); the sequencer lock serializes everything else. The conservative
/// cross-island lookahead derived from mesh hop latency is carried along as
/// the bound a relaxed (non-bit-exact) mode could exploit — see DESIGN.md.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
#[derive(Debug)]
pub(crate) struct ShardedRt {
    /// Island index of each core.
    island_of: Vec<usize>,
    /// Per-island fiber runtimes. Each is sized for *global* core ids so
    /// no id translation happens on the switch path; only the island's own
    /// slots are ever used.
    rts: Vec<FiberRt>,
    /// Minimum cross-island mesh latency in cycles: no interaction between
    /// islands can land earlier than this after it was initiated.
    lookahead: u64,
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
impl ShardedRt {
    /// Builds the runtime for `islands` (a partition of `0..num_cores`).
    pub(crate) fn new(islands: &[Vec<usize>], num_cores: usize, lookahead: u64) -> Self {
        let mut island_of = vec![usize::MAX; num_cores];
        for (idx, isl) in islands.iter().enumerate() {
            for &c in isl {
                island_of[c] = idx;
            }
        }
        assert!(island_of.iter().all(|&i| i != usize::MAX), "islands must partition the cores");
        ShardedRt {
            island_of,
            rts: (0..islands.len()).map(|_| FiberRt::new(num_cores)).collect(),
            lookahead,
        }
    }

    /// Island index of `core`.
    pub(crate) fn island_of(&self, core: usize) -> usize {
        self.island_of[core]
    }

    /// The fiber runtime of `island`.
    pub(crate) fn rt(&self, island: usize) -> &FiberRt {
        &self.rts[island]
    }

    /// Number of islands.
    pub(crate) fn num_islands(&self) -> usize {
        self.rts.len()
    }

    /// The conservative cross-island lookahead in cycles.
    pub(crate) fn lookahead(&self) -> u64 {
        self.lookahead
    }
}

impl Sequencer {
    /// Creates a sequencer for `num_cores` cores, all initially running.
    pub fn new(num_cores: usize) -> Self {
        assert!(num_cores > 0);
        Sequencer {
            inner: Mutex::new(Inner {
                waiting: BTreeSet::new(),
                running: num_cores,
                current: None,
                poisoned: false,
                reason: None,
                cores: vec![CoreState::default(); num_cores],
                threads: (0..num_cores).map(|_| None).collect(),
                op_hash: FNV_OFFSET,
                script: None,
            }),
            watchdog: None,
            since_progress: AtomicU64::new(0),
            total_grants: AtomicU64::new(0),
            fast_grants: AtomicU64::new(0),
            activity: AtomicU64::new(0),
            poison_flag: AtomicBool::new(false),
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            fiber: None,
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            sharded: None,
            heartbeat: None,
        }
    }

    /// Arms the heartbeat: every `config.every` grants, the granting core
    /// snapshots the run (grant totals, per-core strip, the live counters
    /// ports publish into `live`) and hands it to `config.sink` with no
    /// engine lock held. Must be called before core threads start.
    pub fn set_heartbeat(&mut self, config: Heartbeat, live: Arc<LiveCounters>) {
        self.heartbeat = Some(HeartbeatHook { config, live });
    }

    /// Installs the grant tie-breaking policy. Must be called before core
    /// threads start. [`SchedulePolicy::MinCore`] (the initial state) is
    /// free; [`SchedulePolicy::Scripted`] arms choice-point recording and
    /// script replay.
    pub fn set_policy(&self, policy: SchedulePolicy) {
        let mut g = self.inner.lock();
        g.script = match policy {
            SchedulePolicy::MinCore => None,
            SchedulePolicy::Scripted(script) => {
                Some(ScriptState { script, pos: 0, choices: Vec::new() })
            }
        };
    }

    /// Every tie recorded so far, in grant order (always empty under
    /// [`SchedulePolicy::MinCore`]).
    pub fn choice_points(&self) -> Vec<ChoicePoint> {
        self.inner.lock().script.as_ref().map_or_else(Vec::new, |s| s.choices.clone())
    }

    /// Arms the liveness watchdog. Must be called before core threads
    /// start.
    pub fn set_watchdog(&mut self, config: WatchdogConfig) {
        assert!(config.budget > 0, "watchdog budget must be positive");
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        assert!(self.fiber.is_none(), "the watchdog requires the thread backend");
        self.watchdog = Some(config);
    }

    /// Switches this sequencer to the fiber backend. Must be called before
    /// the run starts; incompatible with an armed watchdog (the wall-clock
    /// fallback needs a second runnable thread to observe a stall).
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    pub(crate) fn set_fiber_backend(&mut self, rt: FiberRt) {
        assert!(self.watchdog.is_none(), "fiber backend is incompatible with the watchdog");
        self.fiber = Some(rt);
    }

    /// The fiber-backend runtime, if this sequencer uses fibers.
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    pub(crate) fn fiber_rt(&self) -> Option<&FiberRt> {
        self.fiber.as_ref()
    }

    /// Switches this sequencer to the sharded fiber backend. Must be
    /// called before the run starts. Compatible with the watchdog: the
    /// grant-budget check runs on whichever fiber grants (as on threads),
    /// and the wall-clock fallback runs in the island launcher threads.
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    pub(crate) fn set_sharded_backend(&mut self, rt: ShardedRt) {
        assert!(self.fiber.is_none(), "fiber and sharded backends are mutually exclusive");
        self.sharded = Some(rt);
    }

    /// The sharded-backend runtime, if this sequencer uses it.
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    pub(crate) fn sharded_rt(&self) -> Option<&ShardedRt> {
        self.sharded.as_ref()
    }

    /// The core currently granted the token, if it belongs to `island`.
    /// Island launchers poll this after an unpark to learn whether a
    /// cross-island handoff dispatched one of their fibers. Sound to act
    /// on: a granted core of this island can only be *suspended* while its
    /// launcher executes (fibers of an island never run concurrently with
    /// their launcher).
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    pub(crate) fn granted_core_on_island(&self, island: usize) -> Option<usize> {
        let g = self.inner.lock();
        let sh = self.sharded.as_ref()?;
        match g.current {
            Some(c) if sh.island_of[c] == island => Some(c),
            _ => None,
        }
    }

    /// Non-panicking watchdog trip for island launcher threads: poisons
    /// with a [`PoisonReason::Watchdog`] naming the earliest waiter and
    /// wakes every thread. The launchers then drain their fibers, whose
    /// `enter` assertions raise the panics `run_system` reports as a
    /// watchdog diagnostic bundle. (The launcher itself must not panic —
    /// its unwind would bypass report collection.)
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    pub(crate) fn launcher_trip(&self) {
        let mut g = self.inner.lock();
        if g.poisoned {
            return;
        }
        let (time, core) = g.waiting.iter().next().copied().unwrap_or((0, 0));
        g.poisoned = true;
        g.reason.get_or_insert(PoisonReason::Watchdog { core, time });
        self.poison_flag.store(true, Ordering::Relaxed);
        for t in g.threads.iter().flatten() {
            t.unpark();
        }
    }

    /// The armed watchdog configuration, if any (island launchers read the
    /// wall-clock window from it).
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    pub(crate) fn watchdog_config(&self) -> Option<WatchdogConfig> {
        self.watchdog
    }

    /// Snapshot of the liveness counters island launchers compare across a
    /// wall-clock window: `(total_grants, activity)`.
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    pub(crate) fn liveness_snapshot(&self) -> (u64, u64) {
        (self.total_grants.load(Ordering::Relaxed), self.activity.load(Ordering::Relaxed))
    }

    /// Grants the token to a minimum-*time* waiter, if any. This is the
    /// single grant-selection rule shared by every execution backend, so
    /// threads, fibers, and sharded fibers produce the identical op
    /// stream. Under [`SchedulePolicy::MinCore`] a time tie goes to the
    /// lowest core id; under [`SchedulePolicy::Scripted`] the script picks
    /// among the tied cores and the tie is recorded as a [`ChoicePoint`].
    fn pick_next(inner: &mut Inner) -> Option<usize> {
        debug_assert!(inner.current.is_none());
        let core = if inner.script.is_none() {
            inner.waiting.iter().next()?.1
        } else {
            Self::pick_scripted(inner)?
        };
        inner.current = Some(core);
        Some(core)
    }

    /// Scripted grant selection: collects every waiter tied at the minimum
    /// time, consults the script when there are at least two, and records
    /// the tie. Grants only happen when every live core sits in the
    /// waiting set (or via the single-runner fast path, which under
    /// `Scripted` never fires on a tie), so the candidate set — and with
    /// it the whole choice tree — is deterministic.
    fn pick_scripted(inner: &mut Inner) -> Option<usize> {
        let &(min_time, first) = inner.waiting.iter().next()?;
        let candidates: Vec<usize> =
            inner.waiting.iter().take_while(|&&(t, _)| t == min_time).map(|&(_, c)| c).collect();
        if candidates.len() < 2 {
            return Some(first);
        }
        let st = inner.script.as_mut().expect("scripted pick without a script");
        let idx = st.script.get(st.pos).map_or(0, |&i| (i as usize).min(candidates.len() - 1));
        st.pos += 1;
        let chosen = candidates[idx];
        st.choices.push(ChoicePoint { time: min_time, candidates, chosen: idx as u32 });
        Some(chosen)
    }

    /// Thread backend: picks the next waiter and returns the thread to
    /// unpark — the caller must deliver the unpark AFTER releasing the
    /// sequencer lock, so the woken core never contends on it. When the
    /// caller selects itself, no wake is needed: it re-checks `current`
    /// before parking.
    #[must_use]
    fn dispatch(&self, inner: &mut Inner, caller: Option<usize>) -> Option<std::thread::Thread> {
        let core = Self::pick_next(inner)?;
        if caller == Some(core) {
            return None;
        }
        Some(inner.threads[core].clone().expect("waiting core has registered its thread"))
    }

    /// Per-grant bookkeeping: stats, the op-stream hash fold, and the
    /// watchdog budget check. Shared by the parked and fast re-grant paths
    /// so both produce the identical op stream.
    ///
    /// Returns whether a heartbeat is due at this grant. The *caller* must
    /// drop the inner guard and then call [`Sequencer::emit_heartbeat`]:
    /// the sink may do I/O and must never run under the sequencer lock.
    #[must_use]
    fn record_grant(&self, g: &mut Inner, core: usize, time: u64) -> bool {
        g.cores[core].grants += 1;
        g.cores[core].last_time = time;
        g.op_hash = fold_grant(g.op_hash, time, core);
        let total = self.total_grants.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(wd) = self.watchdog {
            let since = self.since_progress.fetch_add(1, Ordering::Relaxed) + 1;
            if since > wd.budget {
                self.trip(g, core, time);
            }
        }
        match &self.heartbeat {
            Some(hb) => total.is_multiple_of(hb.config.every),
            None => false,
        }
    }

    /// Builds and delivers the heartbeat snapshot due at grant-time `time`.
    /// Called by the granting core after releasing the sequencer lock (it
    /// still holds the token, so nothing can be granted while the snapshot
    /// is taken — the deterministic fields are frozen).
    fn emit_heartbeat(&self, time: u64) {
        let Some(hb) = &self.heartbeat else { return };
        let total = self.total_grants.load(Ordering::Relaxed);
        let (cores, islands) = {
            let g = self.inner.lock();
            let waiting: std::collections::HashMap<usize, u64> =
                g.waiting.iter().map(|&(t, c)| (c, t)).collect();
            let cores: Vec<CoreBeat> = g
                .cores
                .iter()
                .enumerate()
                .map(|(core, s)| CoreBeat {
                    grants: s.grants,
                    last_time: s.last_time,
                    retired: s.retired,
                    waiting_at: waiting.get(&core).copied(),
                })
                .collect();
            let islands = self.island_times(&cores);
            (cores, islands)
        };
        let snap = HeartbeatSnap::new(
            total / hb.config.every,
            time,
            total,
            self.fast_grants.load(Ordering::Relaxed),
            Some(hb.live.as_ref()),
            cores,
            islands,
        );
        (hb.config.sink)(&snap);
    }

    /// Per-island maximum granted time under the sharded backend (empty
    /// elsewhere).
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    fn island_times(&self, cores: &[CoreBeat]) -> Vec<u64> {
        let Some(sh) = &self.sharded else { return Vec::new() };
        let mut out = vec![0u64; sh.num_islands()];
        for (core, beat) in cores.iter().enumerate() {
            let isl = sh.island_of(core);
            out[isl] = out[isl].max(beat.last_time);
        }
        out
    }

    #[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
    fn island_times(&self, _cores: &[CoreBeat]) -> Vec<u64> {
        Vec::new()
    }

    /// Poisons with a watchdog reason and panics on the calling thread.
    fn trip(&self, g: &mut Inner, core: usize, time: u64) -> ! {
        g.poisoned = true;
        g.reason.get_or_insert(PoisonReason::Watchdog { core, time });
        self.poison_flag.store(true, Ordering::Relaxed);
        for t in g.threads.iter().flatten() {
            t.unpark();
        }
        panic!("{WATCHDOG_MSG} (tripped on core {core} at cycle {time})");
    }

    /// Blocks until `core` (at simulated time `time`) holds the global
    /// minimum and is granted the token.
    ///
    /// # Panics
    ///
    /// Panics if the simulation was poisoned by a panic on another core, or
    /// if the armed watchdog finds the simulation stuck.
    pub fn enter(&self, core: usize, time: u64) {
        let mut g = self.inner.lock();
        assert!(!g.poisoned, "{}", POISON_MSG);
        // Fast re-grant: this core is the only one running, nobody holds
        // the token, and every parked core waits at a later `(time, core)`
        // — dispatch would pick this core right back. Grant inline and skip
        // the waiting-set churn and park/unpark round trip entirely. This
        // is the steady state of steal-free inner loops and serial phases.
        // Under `Scripted`, a time tie with the earliest waiter must fall
        // through to the slow path: the tie is a choice point the script
        // decides and the run records. `MinCore` can take the tie inline —
        // `(time, core) < min` already encodes its lowest-core-id rule.
        let fast_ok = if g.script.is_none() {
            g.waiting.first().is_none_or(|&min| (time, core) < min)
        } else {
            g.waiting.first().is_none_or(|&min| time < min.0)
        };
        if g.running == 1 && g.current.is_none() && fast_ok {
            g.current = Some(core);
            self.fast_grants.fetch_add(1, Ordering::Relaxed);
            let hb_due = self.record_grant(&mut g, core, time);
            drop(g);
            if hb_due {
                self.emit_heartbeat(time);
            }
            return;
        }
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        if self.fiber.is_some() {
            return self.enter_fiber(g, core, time);
        }
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        if self.sharded.is_some() {
            return self.enter_sharded(g, core, time);
        }
        if g.threads[core].is_none() {
            g.threads[core] = Some(std::thread::current());
        }
        g.waiting.insert((time, core));
        g.running -= 1;
        if g.running == 0 {
            if let Some(next) = self.dispatch(&mut g, Some(core)) {
                drop(g);
                next.unpark();
                g = self.inner.lock();
            }
        }
        while g.current != Some(core) {
            assert!(!g.poisoned, "{}", POISON_MSG);
            match self.watchdog {
                None => {
                    drop(g);
                    std::thread::park();
                    g = self.inner.lock();
                }
                Some(wd) => {
                    let before = self.total_grants.load(Ordering::Relaxed);
                    let before_act = self.activity.load(Ordering::Relaxed);
                    let window = Duration::from_millis(wd.wall_ms);
                    let t0 = Instant::now();
                    drop(g);
                    std::thread::park_timeout(window);
                    let timed_out = t0.elapsed() >= window;
                    g = self.inner.lock();
                    if timed_out
                        && !g.poisoned
                        && g.current != Some(core)
                        && self.total_grants.load(Ordering::Relaxed) == before
                        && self.activity.load(Ordering::Relaxed) == before_act
                    {
                        // Nothing was granted anywhere AND no core did any
                        // productive local work for the whole window: the
                        // run is stuck, not slow.
                        self.trip(&mut g, core, time);
                    }
                }
            }
        }
        assert!(!g.poisoned, "{}", POISON_MSG);
        let removed = g.waiting.remove(&(time, core));
        debug_assert!(removed, "granted core must be in the waiting set");
        g.running += 1;
        let hb_due = self.record_grant(&mut g, core, time);
        drop(g);
        if hb_due {
            self.emit_heartbeat(time);
        }
    }

    /// Fiber-backend slow path of [`Sequencer::enter`]: same bookkeeping
    /// and grant-selection as the thread path, but "parking" is a direct
    /// user-space stack switch to the dispatched core (or to the launcher
    /// while cores are still being started), and "unparking" is someone
    /// switching back to us.
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    fn enter_fiber<'a>(
        &'a self,
        mut g: crate::sync::MutexGuard<'a, Inner>,
        core: usize,
        time: u64,
    ) {
        let rt = self.fiber.as_ref().expect("fiber backend armed");
        g.waiting.insert((time, core));
        g.running -= 1;
        loop {
            if g.current == Some(core) {
                break;
            }
            assert!(!g.poisoned, "{}", POISON_MSG);
            // `running > 0` here means unstarted fibers remain (a started,
            // live, non-waiting fiber is the caller itself): hand control
            // back to the launcher so it can start them. Otherwise dispatch
            // the minimum waiter and jump straight onto its stack.
            let target = if g.running == 0 && g.current.is_none() {
                match Self::pick_next(&mut g) {
                    Some(c) if c == core => continue, // re-granted ourselves
                    Some(c) => FiberId::Core(c),
                    None => unreachable!("we inserted ourselves into the waiting set"),
                }
            } else {
                FiberId::Launcher
            };
            drop(g);
            // SAFETY: single simulation thread, no guard held, target is a
            // live suspended context (the dispatched waiter or launcher).
            unsafe { rt.switch(FiberId::Core(core), target) };
            g = self.inner.lock();
        }
        assert!(!g.poisoned, "{}", POISON_MSG);
        let removed = g.waiting.remove(&(time, core));
        debug_assert!(removed, "granted core must be in the waiting set");
        g.running += 1;
        let hb_due = self.record_grant(&mut g, core, time);
        drop(g);
        if hb_due {
            self.emit_heartbeat(time);
        }
    }

    /// Sharded-backend slow path of [`Sequencer::enter`]: bookkeeping and
    /// grant selection identical to both other backends, but the yield
    /// depends on where the dispatched core lives. A same-island grantee
    /// is resumed by a direct user-space stack switch; a cross-island
    /// grantee is woken by unparking its island's thread (the one futex
    /// point of this backend), after which the caller yields to its own
    /// island launcher.
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    fn enter_sharded<'a>(
        &'a self,
        mut g: crate::sync::MutexGuard<'a, Inner>,
        core: usize,
        time: u64,
    ) {
        let sh = self.sharded.as_ref().expect("sharded backend armed");
        let island = sh.island_of[core];
        let rt = &sh.rts[island];
        // Register the island thread under this core so `poison`'s
        // unpark-all and cross-island dispatch reach our launcher.
        if g.threads[core].is_none() {
            g.threads[core] = Some(std::thread::current());
        }
        g.waiting.insert((time, core));
        g.running -= 1;
        loop {
            if g.current == Some(core) {
                break;
            }
            assert!(!g.poisoned, "{}", POISON_MSG);
            // `running > 0` means unstarted fibers remain somewhere (every
            // started, live, non-waiting fiber is the caller itself):
            // yield to our launcher; the token will find us by unpark.
            if g.running == 0 && g.current.is_none() {
                match Self::pick_next(&mut g) {
                    Some(c) if c == core => continue, // re-granted ourselves
                    Some(c) if sh.island_of[c] == island => {
                        drop(g);
                        // SAFETY: same island ⇒ same OS thread; the target
                        // is a live suspended waiter, no guard is held.
                        unsafe { rt.switch(FiberId::Core(core), FiberId::Core(c)) };
                    }
                    Some(c) => {
                        let t = g.threads[c]
                            .clone()
                            .expect("waiting core has registered its island thread");
                        drop(g);
                        // Unpark strictly after the lock release so the
                        // woken launcher never contends on it.
                        t.unpark();
                        // SAFETY: yielding to our own launcher, which is
                        // suspended whenever one of its fibers runs.
                        unsafe { rt.switch(FiberId::Core(core), FiberId::Launcher) };
                    }
                    None => unreachable!("we inserted ourselves into the waiting set"),
                }
            } else {
                drop(g);
                // SAFETY: as above — our launcher is suspended.
                unsafe { rt.switch(FiberId::Core(core), FiberId::Launcher) };
            }
            g = self.inner.lock();
        }
        assert!(!g.poisoned, "{}", POISON_MSG);
        let removed = g.waiting.remove(&(time, core));
        debug_assert!(removed, "granted core must be in the waiting set");
        g.running += 1;
        let hb_due = self.record_grant(&mut g, core, time);
        drop(g);
        if hb_due {
            self.emit_heartbeat(time);
        }
    }

    /// Fiber-backend retirement: the usual bookkeeping, plus the choice of
    /// where the finished fiber must switch next — the dispatched minimum
    /// waiter, or the launcher when none exists (run over, or poison drain
    /// in progress). The caller performs the switch after storing its
    /// report, because nothing else runs until it yields the thread.
    ///
    /// Shared with the sharded backend, where a cross-island grantee is
    /// woken through its launcher instead of switched to directly.
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    pub(crate) fn retire_fiber_target(&self, core: usize) -> FiberId {
        let mut g = self.inner.lock();
        g.cores[core].retired = true;
        if g.poisoned {
            return FiberId::Launcher;
        }
        g.running -= 1;
        if g.running == 0 && g.current.is_none() {
            if let Some(c) = Self::pick_next(&mut g) {
                if let Some(sh) = self.sharded.as_ref() {
                    if sh.island_of[c] != sh.island_of[core] {
                        let t = g.threads[c]
                            .clone()
                            .expect("waiting core has registered its island thread");
                        drop(g);
                        t.unpark();
                        return FiberId::Launcher;
                    }
                }
                return FiberId::Core(c);
            }
        }
        FiberId::Launcher
    }

    /// Releases the token after a sequenced section. The core keeps running
    /// user code exclusively until its next `enter`.
    pub fn leave(&self, core: usize) {
        let mut g = self.inner.lock();
        if g.poisoned {
            return;
        }
        debug_assert_eq!(g.current, Some(core), "leave() by a core that does not hold the token");
        g.current = None;
    }

    /// Removes `core` from the simulation (its worker returned).
    pub fn retire(&self, core: usize) {
        let mut g = self.inner.lock();
        g.cores[core].retired = true;
        if g.poisoned {
            return;
        }
        g.running -= 1;
        let next =
            if g.running == 0 && g.current.is_none() { self.dispatch(&mut g, None) } else { None };
        drop(g);
        if let Some(t) = next {
            t.unpark();
        }
    }

    /// Resets the watchdog's no-progress counter. Called by the runtime
    /// whenever real forward progress happens (a task ran, a steal
    /// completed, completion was signalled). Free when no watchdog is
    /// armed.
    pub fn mark_progress(&self) {
        if self.watchdog.is_some() {
            self.since_progress.store(0, Ordering::Relaxed);
        }
    }

    /// Total token grants so far.
    pub fn total_grants(&self) -> u64 {
        self.total_grants.load(Ordering::Relaxed)
    }

    /// Grants that took the inline fast re-grant path.
    pub fn fast_grants(&self) -> u64 {
        self.fast_grants.load(Ordering::Relaxed)
    }

    /// Conservative cross-island lookahead of the sharded backend in
    /// cycles, or 0 on the other backends (and on hosts without fiber
    /// support).
    pub fn sharded_lookahead(&self) -> u64 {
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        {
            self.sharded.as_ref().map_or(0, |s| s.lookahead())
        }
        #[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
        {
            0
        }
    }

    /// Order-sensitive hash of the `(time, core)` grant stream so far.
    pub fn op_hash(&self) -> u64 {
        self.inner.lock().op_hash
    }

    /// Marks the simulation as failed (a core panicked) and wakes every
    /// waiting core so its `enter` panics too, unwinding all threads.
    pub fn poison(&self) {
        let mut g = self.inner.lock();
        g.poisoned = true;
        g.reason.get_or_insert(PoisonReason::WorkerPanic);
        self.poison_flag.store(true, Ordering::Relaxed);
        for t in g.threads.iter().flatten() {
            t.unpark();
        }
    }

    /// Lock-free poison check for hot purely-local paths (see
    /// [`poison_flag`](Self::poison_flag) on the field). A core that only
    /// burns local cycles between sequenced operations polls this so a
    /// poisoned run unwinds it too instead of letting it spin forever.
    pub(crate) fn check_poison(&self) -> bool {
        self.poison_flag.load(Ordering::Relaxed)
    }

    /// Records liveness evidence from a purely local *productive* charge
    /// (compute, memory, ULI work — anything but idling), feeding the
    /// wall-clock fallback's activity discriminator. Free when no watchdog
    /// is armed. Callers must not report idle charges: idle cycles only
    /// pass while waiting for sequenced state, which cannot change without
    /// a grant, so an idle spinner with zero grants is genuinely stuck.
    pub(crate) fn note_local_progress(&self) {
        if self.watchdog.is_some() {
            self.activity.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Why the simulation was poisoned (`None` if it was not).
    pub fn poison_reason(&self) -> Option<PoisonReason> {
        self.inner.lock().reason
    }

    /// Whether the simulation has been poisoned.
    #[cfg(test)]
    pub fn is_poisoned(&self) -> bool {
        self.inner.lock().poisoned
    }

    /// Per-core sequencer diagnostics (for the crash bundle).
    pub fn core_diag(&self) -> Vec<SeqCoreDiag> {
        let g = self.inner.lock();
        let waiting: std::collections::HashMap<usize, u64> =
            g.waiting.iter().map(|&(t, c)| (c, t)).collect();
        g.cores
            .iter()
            .enumerate()
            .map(|(core, s)| SeqCoreDiag {
                waiting_at: waiting.get(&core).copied(),
                grants: s.grants,
                last_time: s.last_time,
                retired: s.retired,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    /// Three cores perform interleaved sequenced ops; the observed global
    /// order must be exactly ascending (time, core).
    #[test]
    fn grants_follow_time_order() {
        let seq = Arc::new(Sequencer::new(3));
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for core in 0..3usize {
            let seq = Arc::clone(&seq);
            let log = Arc::clone(&log);
            handles.push(std::thread::spawn(move || {
                let mut t = core as u64; // staggered start times
                for _ in 0..50 {
                    seq.enter(core, t);
                    log.lock().push((t, core));
                    seq.leave(core);
                    t += 3; // all cores advance at the same rate
                }
                seq.retire(core);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let log = log.lock();
        assert_eq!(log.len(), 150);
        let mut sorted = log.clone();
        sorted.sort();
        assert_eq!(*log, sorted, "grants must be in global (time, core) order");
    }

    #[test]
    fn single_core_never_blocks() {
        let seq = Sequencer::new(1);
        for t in 0..10 {
            seq.enter(0, t);
            seq.leave(0);
        }
        seq.retire(0);
    }

    #[test]
    fn retire_unblocks_waiters() {
        let seq = Arc::new(Sequencer::new(2));
        let seq2 = Arc::clone(&seq);
        let done = Arc::new(AtomicUsize::new(0));
        let done2 = Arc::clone(&done);
        let h = std::thread::spawn(move || {
            // Core 1 waits at a later time than core 0 will ever reach; it
            // can only be granted after core 0 retires.
            seq2.enter(1, 1_000_000);
            done2.store(1, Ordering::SeqCst);
            seq2.leave(1);
            seq2.retire(1);
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(done.load(Ordering::SeqCst), 0, "core 1 must still be waiting");
        seq.retire(0);
        h.join().unwrap();
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn poison_unblocks_with_panic() {
        let seq = Arc::new(Sequencer::new(2));
        let seq2 = Arc::clone(&seq);
        let h = std::thread::spawn(move || {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                seq2.enter(1, 42);
            }));
            assert!(r.is_err(), "poisoned enter must panic");
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        seq.poison();
        h.join().unwrap();
        assert!(seq.is_poisoned());
        assert_eq!(seq.poison_reason(), Some(PoisonReason::WorkerPanic));
    }

    #[test]
    fn ties_break_by_core_id() {
        let seq = Arc::new(Sequencer::new(2));
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for core in [1usize, 0usize] {
            let seq = Arc::clone(&seq);
            let log = Arc::clone(&log);
            handles.push(std::thread::spawn(move || {
                seq.enter(core, 5);
                log.lock().push(core);
                seq.leave(core);
                seq.retire(core);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*log.lock(), vec![0, 1]);
    }

    /// Runs two cores that tie at time 5 under `policy` and returns the
    /// observed grant order plus the recorded choice points.
    fn tied_pair(policy: SchedulePolicy) -> (Vec<usize>, Vec<ChoicePoint>) {
        let seq = Arc::new(Sequencer::new(2));
        seq.set_policy(policy);
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for core in [1usize, 0usize] {
            let seq = Arc::clone(&seq);
            let log = Arc::clone(&log);
            handles.push(std::thread::spawn(move || {
                seq.enter(core, 5);
                log.lock().push(core);
                seq.leave(core);
                seq.retire(core);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let order = log.lock().clone();
        (order, seq.choice_points())
    }

    #[test]
    fn scripted_tie_flip_reverses_grant_order() {
        let (order, choices) = tied_pair(SchedulePolicy::Scripted(vec![1]));
        assert_eq!(order, vec![1, 0]);
        assert_eq!(choices.len(), 1);
        assert_eq!(choices[0], ChoicePoint { time: 5, candidates: vec![0, 1], chosen: 1 });
    }

    #[test]
    fn empty_script_replays_min_core_but_records_the_tie() {
        let (order, choices) = tied_pair(SchedulePolicy::Scripted(vec![]));
        assert_eq!(order, vec![0, 1], "exhausted script falls back to the lowest core id");
        assert_eq!(choices.len(), 1);
        assert_eq!(choices[0].chosen, 0);
        // MinCore records nothing at all.
        let (order, choices) = tied_pair(SchedulePolicy::MinCore);
        assert_eq!(order, vec![0, 1]);
        assert!(choices.is_empty());
    }

    #[test]
    fn out_of_range_script_entries_clamp_to_the_last_candidate() {
        let (order, choices) = tied_pair(SchedulePolicy::Scripted(vec![99]));
        assert_eq!(order, vec![1, 0]);
        assert_eq!(choices[0].chosen, 1, "the recorded index is the clamped one");
    }

    #[test]
    fn scripted_op_hash_matches_min_core_on_the_default_path() {
        // A tie-free schedule must hash identically under both policies
        // (the fast re-grant path is gated differently but grants the
        // same stream).
        let run = |policy: SchedulePolicy| {
            let seq = Sequencer::new(1);
            seq.set_policy(policy);
            for t in 0..10 {
                seq.enter(0, t);
                seq.leave(0);
            }
            seq.retire(0);
            seq.op_hash()
        };
        assert_eq!(run(SchedulePolicy::MinCore), run(SchedulePolicy::Scripted(vec![])));
    }

    #[test]
    fn watchdog_trips_on_grant_budget() {
        let mut seq = Sequencer::new(1);
        seq.set_watchdog(WatchdogConfig { budget: 10, wall_ms: 60_000 });
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            for t in 0..100 {
                seq.enter(0, t);
                seq.leave(0);
            }
        }));
        let err = r.expect_err("budget of 10 must trip within 100 grants");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains(WATCHDOG_MSG), "got: {msg}");
        assert!(matches!(seq.poison_reason(), Some(PoisonReason::Watchdog { core: 0, .. })));
    }

    #[test]
    fn progress_marks_keep_watchdog_quiet() {
        let mut seq = Sequencer::new(1);
        seq.set_watchdog(WatchdogConfig { budget: 10, wall_ms: 60_000 });
        for t in 0..100 {
            seq.enter(0, t);
            seq.leave(0);
            if t % 5 == 0 {
                seq.mark_progress();
            }
        }
        seq.retire(0);
        assert!(!seq.is_poisoned());
        assert_eq!(seq.total_grants(), 100);
    }

    #[test]
    fn wall_clock_fallback_trips_when_nothing_is_granted() {
        let mut seq = Sequencer::new(2);
        seq.set_watchdog(WatchdogConfig { budget: 1_000_000, wall_ms: 30 });
        let seq = Arc::new(seq);
        let seq2 = Arc::clone(&seq);
        // Core 1 parks; core 0 never enters or retires (simulating a core
        // stuck in host-level code while holding the logical token).
        let h = std::thread::spawn(move || {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                seq2.enter(1, 0);
            }));
            assert!(r.is_err(), "stalled run must trip the wall-clock fallback");
        });
        h.join().unwrap();
        assert!(matches!(seq.poison_reason(), Some(PoisonReason::Watchdog { .. })));
    }

    #[test]
    fn core_diag_reflects_state() {
        let seq = Sequencer::new(2);
        // Core 1 retires first so core 0's enter can be granted.
        seq.retire(1);
        seq.enter(0, 7);
        seq.leave(0);
        let d = seq.core_diag();
        assert_eq!(d[0].grants, 1);
        assert_eq!(d[0].last_time, 7);
        assert!(!d[0].retired);
        assert!(d[1].retired);
    }
}
