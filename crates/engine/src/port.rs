//! The per-core operation interface.
//!
//! A [`CorePort`] is handed to each worker closure and is the only way to
//! act on the simulated machine: compute, loads/stores/AMOs on simulated
//! addresses, bulk cache operations, and user-level interrupts. Every
//! operation advances the core's local clock; operations on shared state are
//! serialized by the global [`Sequencer`](crate::sequencer::Sequencer) in
//! simulated-time order.
//!
//! **Locking discipline:** a sequenced operation may park the calling
//! thread until its simulated turn. Never hold a lock (or a guard
//! temporary) across a `CorePort` call — bind values out of guards first —
//! or a token holder blocking on that lock deadlocks the simulation.
//!
//! ULIs are delivered at instruction boundaries: every sequenced operation
//! checks (inside the same critical section, at no extra cost) whether an
//! enabled ULI request has arrived, and if so invokes the installed handler
//! after charging the architectural interrupt cost.

use std::sync::Arc;

use bigtiny_coherence::Addr;
use bigtiny_mesh::{CoreSet, UliMessage, UliOutcome, XorShift64};

use crate::breakdown::{TimeBreakdown, TimeCategory};
use crate::config::CoreKind;
use crate::event::{MemEvent, MemOp, RacyTag, SyncNote};
use crate::fault::{FaultCounters, FaultPlan, FaultState, UliSendFault};
use crate::flight::{FlightKind, FlightRing, LiveCounters};
use crate::system::{GlobalState, Shared};
use crate::trace::{UliMark, UliMarkKind};

/// A ULI handler installed by the runtime: invoked with the port and the
/// incoming request message (the thief's core id is `msg.from`).
pub type UliHandler = Box<dyn FnMut(&mut CorePort, UliMessage) + Send>;

/// Entries in each core's store buffer: stores retire into the buffer and
/// only stall the core when it is full (or at drain points: AMOs, flushes).
const STORE_BUFFER_ENTRIES: usize = 8;

/// Bound on coalesced-but-uncharged compute cycles. Coalescing defers the
/// bookkeeping of consecutive pure-compute advances, and the flush is also
/// where the poison flag is polled — so an unbounded accumulation on a core
/// with no ULI handler could spin forever in a poisoned run. The bound is
/// far above any real kernel's inter-operation compute stretch, so it only
/// exists as that safety valve.
const MAX_PENDING_COMPUTE: u64 = 4096;

/// One contiguous stretch of a core's timeline attributed to a single task
/// (or to no task — scheduler time between tasks: steal loops, idling,
/// runtime bookkeeping). Recorded when [`crate::SystemConfig::attr`] is
/// armed; the spans of one core tile its timeline without gaps or overlap,
/// and each span carries the [`TimeBreakdown`] of exactly its interval, so
/// summing span breakdowns reproduces the core's report breakdown.
#[derive(Clone, Debug)]
pub struct AttrSpan {
    /// The task this interval's cycles belong to, or `None` for scheduler
    /// time outside any task body.
    pub task: Option<u32>,
    /// First cycle of the interval (inclusive).
    pub start: u64,
    /// One past the last cycle of the interval (`end - start` cycles).
    pub end: u64,
    /// Where the interval's cycles went; totals exactly `end - start`.
    pub breakdown: TimeBreakdown,
}

/// Recorder state for attribution spans: the open span's owner plus the
/// clock/breakdown snapshot at its start. Same zero-overhead discipline as
/// the trace buffer — snapshots are pure reads of already-computed values.
struct AttrState {
    current: Option<u32>,
    mark_clock: u64,
    mark_breakdown: TimeBreakdown,
    spans: Vec<AttrSpan>,
}

/// Handle through which a worker drives one simulated core.
pub struct CorePort {
    core: usize,
    kind: CoreKind,
    clock: u64,
    instructions: u64,
    /// Completion times of in-flight stores.
    store_buffer: std::collections::VecDeque<u64>,
    /// Compute cycles accumulated since the last ULI-delivery opportunity;
    /// long pure-compute stretches poll at this granularity so a core stays
    /// interruptible (ULIs are delivered at instruction granularity on real
    /// hardware).
    compute_since_poll: u64,
    /// Compute cycles accumulated by consecutive [`CorePort::advance`]
    /// calls but not yet folded into `clock`/`breakdown`/trace (compute
    /// coalescing). Flushed before anything observes the clock: sequenced
    /// ops, non-compute charges, store-buffer arithmetic, [`CorePort::now`],
    /// and the final report. Timing-invisible by construction — only the
    /// number of bookkeeping operations changes, never their sum.
    pending_compute: u64,
    breakdown: TimeBreakdown,
    trace: Option<Vec<crate::trace::TraceEvent>>,
    /// ULI protocol marks for the trace exporter's flow arrows, buffered
    /// only while tracing is enabled (same zero-overhead discipline as
    /// `trace`: disabled recording is one never-taken branch, and marks are
    /// stamped with cycles the simulation already computed).
    uli_marks: Option<Vec<UliMark>>,
    /// Checker event stream, buffered per core when a
    /// [`CheckMode`](crate::CheckMode) is armed. `None` (the default) makes
    /// every emission a single never-taken branch, so unarmed timing and
    /// grant streams are bit-for-bit unchanged. Each event carries the
    /// sequencer's grant counter at its sequenced operation (see
    /// `last_stamp`), letting the engine merge per-core buffers in true
    /// grant order even under a [`crate::SchedulePolicy::Scripted`] run,
    /// where time ties are not broken by core id.
    events: Option<Vec<(u64, MemEvent)>>,
    /// Sequencer grant counter captured inside the most recent sequenced
    /// section (between `enter` and `leave`, no other core can be granted,
    /// so the counter uniquely identifies this core's grant). Sync
    /// annotations and handler-entry events take the stamp of the
    /// operation they ride on.
    last_stamp: u64,
    /// Per-task attribution spans, buffered when
    /// [`crate::SystemConfig::attr`] is armed. `None` (the default) makes
    /// every switch/mark a single never-taken branch.
    attr: Option<AttrState>,
    /// The always-on flight recorder: the last N events on this core (see
    /// [`crate::flight`]). Observation-only — every hook records clocks and
    /// ids the simulation already computed, and a capacity-0 ring makes
    /// each hook a single never-taken branch — so recording can stay
    /// default-on without perturbing a single simulated cycle
    /// (golden-pinned by `armed_observability`).
    flight: FlightRing,
    /// Live-counter sink for the heartbeat, published at the top of every
    /// sequenced section (under the token). `None` unless a heartbeat is
    /// armed.
    live: Option<Arc<LiveCounters>>,
    rng: XorShift64,
    faults: FaultState,
    shared: Arc<Shared>,
    handler: Option<UliHandler>,
    in_handler: bool,
    issue_width: u64,
    overlap_div: u64,
    uli_cost: u64,
    num_cores: usize,
}

impl std::fmt::Debug for CorePort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CorePort")
            .field("core", &self.core)
            .field("kind", &self.kind)
            .field("clock", &self.clock)
            .finish_non_exhaustive()
    }
}

impl CorePort {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        core: usize,
        kind: CoreKind,
        shared: Arc<Shared>,
        seed: u64,
        faults: FaultPlan,
        issue_width: u64,
        overlap_div: u64,
        uli_cost: u64,
        num_cores: usize,
    ) -> Self {
        CorePort {
            core,
            kind,
            clock: 0,
            instructions: 0,
            store_buffer: std::collections::VecDeque::new(),
            compute_since_poll: 0,
            pending_compute: 0,
            breakdown: TimeBreakdown::new(),
            trace: None,
            uli_marks: None,
            events: None,
            last_stamp: 0,
            attr: None,
            flight: FlightRing::new(0),
            live: None,
            rng: XorShift64::new(seed ^ (core as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15)),
            // Only tiny cores other than core 0 are crash-eligible: core 0
            // runs the program's root task, and the paper's big cores are
            // the reliable hosts of last resort.
            faults: FaultState::new(faults, core, kind == CoreKind::Tiny && core != 0),
            shared,
            handler: None,
            in_handler: false,
            issue_width,
            overlap_div,
            uli_cost,
            num_cores,
        }
    }

    /// This core's id.
    pub fn core(&self) -> usize {
        self.core
    }

    /// Number of cores in the system.
    pub fn num_cores(&self) -> usize {
        self.num_cores
    }

    /// This core's microarchitecture class.
    pub fn kind(&self) -> CoreKind {
        self.kind
    }

    /// Current local simulated time in cycles.
    pub fn now(&self) -> u64 {
        self.clock + self.pending_compute
    }

    /// Instructions retired so far (used for work/span accounting).
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// The accumulated execution-time breakdown, including compute cycles
    /// still coalesced (not yet folded into the clock).
    pub fn breakdown(&self) -> TimeBreakdown {
        let mut b = self.breakdown;
        b.add(TimeCategory::Compute, self.pending_compute);
        b
    }

    /// Deterministic per-core random value in `0..bound`.
    pub fn rng_below(&mut self, bound: u64) -> u64 {
        self.rng.next_below(bound)
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// Runs `f` on the global state under the token, delivering at most one
    /// pending ULI observed in the same critical section.
    fn seq<R>(&mut self, f: impl FnOnce(&mut GlobalState, u64, usize) -> R) -> R {
        self.seq_with(f, |_| None)
    }

    /// [`CorePort::seq`] plus checker-event emission: `op_of` maps the
    /// sequenced result to the event to record, evaluated only when events
    /// are armed. The event must be recorded *here* — after the grant,
    /// before any ULI delivered in the same critical section runs — or a
    /// handler's own events would precede the operation that admitted the
    /// interrupt, and the recorded cycle would include handler time.
    fn seq_with<R>(
        &mut self,
        f: impl FnOnce(&mut GlobalState, u64, usize) -> R,
        op_of: impl FnOnce(&R) -> Option<MemOp>,
    ) -> R {
        self.flush_compute();
        let check_uli = self.handler.is_some() && !self.in_handler;
        let (r, msg) = {
            self.shared.seq.enter(self.core, self.clock);
            self.flight.record(self.clock, FlightKind::Grant);
            if let Some(live) = &self.live {
                // Under the token: no other core can be granted until we
                // leave, so heartbeat reads of these counters are a
                // deterministic function of the grant stream.
                live.publish(self.core, self.clock, &self.breakdown, &self.faults.counters);
            }
            if self.events.is_some() {
                // Between our grant and `leave` no other core can be
                // granted, so the counter read here uniquely stamps this
                // sequenced operation with its global grant index.
                self.last_stamp = self.shared.seq.total_grants();
            }
            let mut st = self.shared.state.lock();
            let r = f(&mut st, self.clock, self.core);
            let msg = if check_uli { st.uli.take_request(self.core, self.clock) } else { None };
            drop(st);
            self.shared.seq.leave(self.core);
            (r, msg)
        };
        if self.events.is_some() {
            if let Some(op) = op_of(&r) {
                self.emit(op);
            }
        }
        // Every sequenced operation is a ULI-delivery opportunity.
        self.compute_since_poll = 0;
        if let Some(m) = msg {
            // Fault injection: a taken request can be lost before the
            // handler sees it (a dropped interrupt).
            if !self.faults.on_uli_receive() {
                self.dispatch_uli(m);
            } else {
                self.flight.record(self.clock, FlightKind::FaultRxDrop);
            }
        }
        r
    }

    fn dispatch_uli(&mut self, msg: UliMessage) {
        // Architectural interrupt cost: drain in-flight instructions and
        // vector to the user-level handler.
        self.breakdown.add(TimeCategory::Uli, self.uli_cost);
        self.clock += self.uli_cost;
        self.mark_uli(self.clock, UliMarkKind::ReqRecv { from: msg.from });
        self.flight.record(self.clock, FlightKind::UliReqRecv { from: msg.from });
        self.emit(MemOp::Sync(SyncNote::HandlerEnter { from: msg.from }));
        let mut h = self.handler.take().expect("handler present when dispatching");
        self.in_handler = true;
        h(self, msg);
        self.in_handler = false;
        self.handler = Some(h);
    }

    /// Memory-stall latency as seen by this core: big out-of-order cores
    /// overlap part of every miss with independent work.
    fn mem_latency(&self, raw: u64) -> u64 {
        match self.kind {
            CoreKind::Big => (raw / self.overlap_div).max(1),
            CoreKind::Tiny => raw,
        }
    }

    fn charge(&mut self, cat: TimeCategory, cycles: u64) {
        self.flush_compute();
        self.charge_now(cat, cycles);
    }

    /// Folds any coalesced compute into the clock/breakdown/trace. Between
    /// the first deferred `advance` and this flush the clock never moves
    /// (every other charge flushes first), so the single merged trace event
    /// spans exactly the cycles the individual events would have.
    fn flush_compute(&mut self) {
        let pending = std::mem::take(&mut self.pending_compute);
        if pending > 0 {
            self.charge_now(TimeCategory::Compute, pending);
        }
    }

    fn charge_now(&mut self, cat: TimeCategory, cycles: u64) {
        if cycles > 0 {
            // A core looping on purely local time (back-off, spin-waits)
            // never takes the sequencer lock, so it must poll the poison
            // flag here or a poisoned run could not unwind it.
            if self.shared.seq.check_poison() {
                panic!("{}", crate::sequencer::POISON_MSG);
            }
            // Productive local cycles are liveness evidence for the
            // watchdog's wall-clock fallback; idle spinning is not (it only
            // waits on sequenced state, which needs a grant to change).
            if cat != TimeCategory::Idle {
                self.shared.seq.note_local_progress();
            }
            if let Some(t) = self.trace.as_mut() {
                t.push(crate::trace::TraceEvent { start: self.clock, cycles, category: cat });
            }
        }
        self.breakdown.add(cat, cycles);
        self.clock += cycles;
    }

    /// Enables trace recording on this port (set by the engine when the
    /// system configuration requests traces).
    pub(crate) fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
        self.uli_marks = Some(Vec::new());
    }

    /// Records one ULI protocol mark at `cycle` (a grant or dispatch time
    /// the simulation already computed). Never sequences and never charges:
    /// with tracing disabled this is one never-taken branch.
    #[inline]
    fn mark_uli(&mut self, cycle: u64, kind: UliMarkKind) {
        if let Some(m) = self.uli_marks.as_mut() {
            m.push(UliMark { cycle, kind });
        }
    }

    /// Enables checker event collection on this port (set by the engine
    /// when [`crate::SystemConfig::check`] is armed).
    pub(crate) fn enable_events(&mut self) {
        self.events = Some(Vec::new());
    }

    /// Sizes this port's flight-recorder ring (set by the engine from
    /// [`crate::SystemConfig::flight_ring`]; 0 disables recording).
    pub(crate) fn set_flight_capacity(&mut self, events: usize) {
        self.flight = FlightRing::new(events);
    }

    /// Installs the live-counter sink the heartbeat reads (set by the
    /// engine when [`crate::SystemConfig::heartbeat`] is armed).
    pub(crate) fn set_live(&mut self, live: Arc<LiveCounters>) {
        self.live = Some(live);
    }

    /// Records one event on this core's flight recorder at the current
    /// local clock. Observation-only: never sequences, never charges a
    /// cycle — runtimes call this from their scheduler hooks (task
    /// lifecycle, steal attempts, deque operations) without perturbing
    /// simulated state. With a capacity-0 ring this is one never-taken
    /// branch.
    #[inline]
    pub fn flight_note(&mut self, kind: FlightKind) {
        let t = self.now();
        self.flight.record(t, kind);
    }

    /// Records one checker event at the current clock. Called right after
    /// a sequenced operation returns — before its latency is charged — so
    /// `self.clock` is exactly the grant time of the operation. Never
    /// sequences and never charges: with events disabled this is one
    /// never-taken branch.
    #[inline]
    fn emit(&mut self, op: MemOp) {
        if let Some(ev) = self.events.as_mut() {
            ev.push((self.last_stamp, MemEvent { cycle: self.clock, core: self.core, op }));
        }
    }

    /// Inserts a zero-cost synchronization annotation into the checker
    /// event stream (deque acquire/release, `has_stolen_child`
    /// transitions). Pure metadata: takes no sequencer grant, charges no
    /// cycles, and compiles to a never-taken branch when checking is off —
    /// so annotating the runtime cannot perturb any golden hash.
    pub fn annotate_sync(&mut self, note: SyncNote) {
        if let Some(ev) = self.events.as_mut() {
            let cycle = self.clock + self.pending_compute;
            ev.push((self.last_stamp, MemEvent { cycle, core: self.core, op: MemOp::Sync(note) }));
        }
    }

    /// Whether checker event collection is armed on this port. Lets the
    /// runtime skip work that only feeds annotations (it currently never
    /// needs to — annotations are themselves free).
    pub fn events_armed(&self) -> bool {
        self.events.is_some()
    }

    /// Enables attribution-span recording on this port (set by the engine
    /// when [`crate::SystemConfig::attr`] is armed).
    pub(crate) fn enable_attr(&mut self) {
        self.attr = Some(AttrState {
            current: None,
            mark_clock: 0,
            mark_breakdown: TimeBreakdown::new(),
            spans: Vec::new(),
        });
    }

    /// Switches the open attribution span to `task`, returning the previous
    /// owner so callers can save/restore around nested task execution.
    /// Closes the span in flight at the current clock (empty spans are
    /// dropped) and opens a new one. Never sequences, never charges, and
    /// reads the clock and breakdown *with* coalesced compute folded in
    /// (without flushing it), so arming attribution is bit-for-bit
    /// invisible to simulated timing. Returns `None` when disarmed.
    pub fn attr_switch(&mut self, task: Option<u32>) -> Option<u32> {
        let now = self.clock + self.pending_compute;
        let breakdown = self.breakdown();
        if let Some(a) = self.attr.as_mut() {
            let prev = a.current;
            if now > a.mark_clock {
                a.spans.push(AttrSpan {
                    task: prev,
                    start: a.mark_clock,
                    end: now,
                    breakdown: breakdown.diff(&a.mark_breakdown),
                });
            }
            a.current = task;
            a.mark_clock = now;
            a.mark_breakdown = breakdown;
            prev
        } else {
            None
        }
    }

    /// Closes and reopens the current attribution span at the current
    /// clock without changing its owner. Called at task-lifecycle event
    /// points so every recorded event cycle is also a span boundary — the
    /// DAG replay can then apportion a task's cycles across its events
    /// exactly, never splitting a span.
    #[inline]
    pub fn attr_mark(&mut self) {
        if self.attr.is_some() {
            let cur = self.attr.as_ref().and_then(|a| a.current);
            self.attr_switch(cur);
        }
    }

    // ------------------------------------------------------------------
    // Compute and idling
    // ------------------------------------------------------------------

    /// Executes `insts` non-memory instructions (purely local: no
    /// sequencing). Big cores retire `issue_width` per cycle.
    pub fn advance(&mut self, insts: u64) {
        self.instructions += insts;
        let cycles = match self.kind {
            CoreKind::Big => insts.div_ceil(self.issue_width),
            CoreKind::Tiny => insts,
        };
        // Coalesce consecutive pure-compute advances into one deferred
        // clock bump; the ULI-delivery boundary below is still checked on
        // the accumulated total, so delivery opportunities land at the same
        // simulated cycle they always did.
        self.pending_compute += cycles;
        if self.pending_compute >= MAX_PENDING_COMPUTE {
            self.flush_compute();
        }
        // Long pure-compute stretches must remain interruptible: poll for
        // ULIs every ~256 accumulated compute cycles.
        if self.handler.is_some() && !self.in_handler {
            self.compute_since_poll += cycles;
            if self.compute_since_poll >= 256 {
                self.uli_poll();
            }
        }
    }

    /// Burns `cycles` in the given accounting category (back-off, waits).
    pub fn wait_cycles(&mut self, cycles: u64, cat: TimeCategory) {
        self.charge(cat, cycles);
    }

    /// Burns `cycles` as idle time.
    pub fn idle(&mut self, cycles: u64) {
        self.charge(TimeCategory::Idle, cycles);
    }

    // ------------------------------------------------------------------
    // Memory operations
    // ------------------------------------------------------------------

    /// Loads `words` consecutive words starting at `addr`; `f` produces the
    /// functional value and runs race-free under the global token.
    pub fn load_words<R>(&mut self, addr: Addr, words: u64, f: impl FnOnce() -> R) -> R {
        self.load_words_impl(addr, words, None, f)
    }

    /// Like [`CorePort::load_words`], but a declared benign race: exempt
    /// from the runtime staleness counter and race-whitelisted in the DRF
    /// checker's happens-before pass under the audited `tag` (the staleness
    /// pass still counts it per tag). Timing is identical to
    /// [`CorePort::load_words`].
    pub fn load_words_racy<R>(
        &mut self,
        addr: Addr,
        words: u64,
        tag: RacyTag,
        f: impl FnOnce() -> R,
    ) -> R {
        self.load_words_impl(addr, words, Some(tag), f)
    }

    fn load_words_impl<R>(
        &mut self,
        addr: Addr,
        words: u64,
        racy: Option<RacyTag>,
        f: impl FnOnce() -> R,
    ) -> R {
        assert!(words >= 1, "load of zero words");
        for w in 0..words - 1 {
            let a = addr.offset(w * 8);
            let lat = self.seq_with(
                move |st, now, core| {
                    if racy.is_some() {
                        st.mem.load_racy(core, a, now)
                    } else {
                        st.mem.load(core, a, now)
                    }
                },
                |_| Some(MemOp::Load { addr: a, racy }),
            );
            let lat = self.mem_latency(lat);
            self.charge(TimeCategory::Load, lat);
        }
        let a = addr.offset((words - 1) * 8);
        let mut out = None;
        let lat = {
            let out_ref = &mut out;
            self.seq_with(
                move |st, now, core| {
                    let l = if racy.is_some() {
                        st.mem.load_racy(core, a, now)
                    } else {
                        st.mem.load(core, a, now)
                    };
                    *out_ref = Some(f());
                    l
                },
                |_| Some(MemOp::Load { addr: a, racy }),
            )
        };
        let lat = self.mem_latency(lat);
        self.charge(TimeCategory::Load, lat);
        self.instructions += words;
        out.expect("functional closure ran")
    }

    /// Loads one word at `addr` for timing only.
    pub fn load(&mut self, addr: Addr) {
        self.load_words(addr, 1, || ());
    }

    /// Retires a store of raw latency `raw` into the store buffer,
    /// returning the cycles the core actually stalls: one issue cycle plus
    /// any wait for a free buffer entry.
    fn buffer_store(&mut self, raw: u64) -> u64 {
        self.flush_compute();
        let now = self.clock;
        while self.store_buffer.front().is_some_and(|done| *done <= now) {
            self.store_buffer.pop_front();
        }
        let stall = if self.store_buffer.len() >= STORE_BUFFER_ENTRIES {
            let head = self.store_buffer.pop_front().expect("nonempty");
            head.saturating_sub(now)
        } else {
            0
        };
        self.store_buffer.push_back(now + stall + 1 + raw);
        stall + 1
    }

    /// Cycles until every buffered store has completed (drain at AMOs and
    /// flush points, which have release semantics).
    fn drain_store_buffer(&mut self) -> u64 {
        self.flush_compute();
        let last = self.store_buffer.back().copied().unwrap_or(0);
        self.store_buffer.clear();
        last.saturating_sub(self.clock)
    }

    /// Stores `words` consecutive words starting at `addr`; `f` applies the
    /// functional effect under the global token. Stores retire through a
    /// bounded store buffer: the core stalls only when the buffer is full.
    pub fn store_words<R>(&mut self, addr: Addr, words: u64, f: impl FnOnce() -> R) -> R {
        self.store_words_impl(addr, words, None, f)
    }

    /// Like [`CorePort::store_words`], but a declared benign write-write
    /// race (concurrent same-value idempotent stores): the DRF checker's
    /// happens-before pass treats it as an atomic-like write under the
    /// audited `tag` — no race against other audited accesses, still a
    /// race against unordered plain accesses. Timing is identical to
    /// [`CorePort::store_words`].
    pub fn store_words_racy<R>(
        &mut self,
        addr: Addr,
        words: u64,
        tag: RacyTag,
        f: impl FnOnce() -> R,
    ) -> R {
        self.store_words_impl(addr, words, Some(tag), f)
    }

    fn store_words_impl<R>(
        &mut self,
        addr: Addr,
        words: u64,
        racy: Option<RacyTag>,
        f: impl FnOnce() -> R,
    ) -> R {
        assert!(words >= 1, "store of zero words");
        for w in 0..words - 1 {
            let a = addr.offset(w * 8);
            let lat = self.seq_with(
                move |st, now, core| st.mem.store(core, a, now),
                |_| Some(MemOp::Store { addr: a, racy }),
            );
            let lat = self.mem_latency(lat);
            let charged = self.buffer_store(lat);
            self.charge(TimeCategory::Store, charged);
        }
        let a = addr.offset((words - 1) * 8);
        let mut out = None;
        let lat = {
            let out_ref = &mut out;
            self.seq_with(
                move |st, now, core| {
                    let l = st.mem.store(core, a, now);
                    *out_ref = Some(f());
                    l
                },
                |_| Some(MemOp::Store { addr: a, racy }),
            )
        };
        let lat = self.mem_latency(lat);
        let charged = self.buffer_store(lat);
        self.charge(TimeCategory::Store, charged);
        self.instructions += words;
        out.expect("functional closure ran")
    }

    /// Stores one word at `addr` for timing only.
    pub fn store(&mut self, addr: Addr) {
        self.store_words(addr, 1, || ());
    }

    /// Atomic read-modify-write of the word at `addr`; `f` applies the
    /// functional effect atomically under the global token. Atomics have
    /// release semantics: the store buffer drains first.
    pub fn amo_word<R>(&mut self, addr: Addr, f: impl FnOnce() -> R) -> R {
        let drain = self.drain_store_buffer();
        self.charge(TimeCategory::Atomic, drain);
        let mut out = None;
        let lat = {
            let out_ref = &mut out;
            self.seq_with(
                move |st, now, core| {
                    let l = st.mem.amo(core, addr, now);
                    *out_ref = Some(f());
                    l
                },
                |_| Some(MemOp::Amo { addr }),
            )
        };
        let lat = self.mem_latency(lat);
        self.charge(TimeCategory::Atomic, lat);
        self.instructions += 1;
        out.expect("functional closure ran")
    }

    /// Bulk self-invalidation of clean data in this core's L1
    /// (`cache_invalidate`; a no-op under MESI). Returns lines invalidated.
    pub fn invalidate_cache(&mut self) -> u64 {
        let (lat, lines) = self.seq_with(
            |st, now, core| st.mem.invalidate_all(core, now),
            |_| Some(MemOp::InvalidateAll),
        );
        self.charge(TimeCategory::Invalidate, lat);
        self.instructions += 1;
        lines
    }

    /// Bulk write-back of dirty data in this core's L1 (`cache_flush`; a
    /// no-op under MESI/DeNovo, a store-buffer drain under GPU-WT). Returns
    /// lines flushed.
    pub fn flush_cache(&mut self) -> u64 {
        let drain = self.drain_store_buffer();
        self.charge(TimeCategory::Flush, drain);
        let (lat, lines) =
            self.seq_with(|st, now, core| st.mem.flush_all(core, now), |_| Some(MemOp::FlushAll));
        self.charge(TimeCategory::Flush, lat);
        self.instructions += 1;
        lines
    }

    // ------------------------------------------------------------------
    // User-level interrupts
    // ------------------------------------------------------------------

    /// Installs the ULI handler for this core (the runtime's steal handler).
    pub fn set_uli_handler(&mut self, handler: UliHandler) {
        self.handler = Some(handler);
    }

    /// Enables ULI reception.
    pub fn uli_enable(&mut self) {
        self.seq(|st, _, core| st.uli.set_enabled(core, true));
        self.charge(TimeCategory::Uli, 1);
        self.instructions += 1;
    }

    /// Disables ULI reception (requests arriving while disabled are NACKed
    /// or deferred per the ULI network model).
    pub fn uli_disable(&mut self) {
        self.seq(|st, _, core| st.uli.set_enabled(core, false));
        self.charge(TimeCategory::Uli, 1);
        self.instructions += 1;
    }

    /// Sends a ULI request to `victim`. On NACK the core stalls until the
    /// NACK returns. The response must be collected with
    /// [`CorePort::uli_poll_response`].
    ///
    /// Under an armed [`FaultPlan`] the request may be silently dropped
    /// (the caller still observes [`UliOutcome::Sent`] — only a response
    /// timeout reveals the loss), force-NACKed, or delivered late.
    pub fn uli_send_request(&mut self, victim: usize, payload: u64) -> UliOutcome {
        // Grant time of the send, captured before `seq_with` folds pending
        // compute and possibly dispatches an incoming ULI (which would move
        // the clock past the send itself).
        let send_cycle = self.now();
        let out = match self.faults.on_uli_send() {
            UliSendFault::None => {
                let out = self.seq_with(
                    move |st, now, core| st.uli.try_send_request(core, victim, payload, now),
                    |out| {
                        (*out == UliOutcome::Sent)
                            .then_some(MemOp::Sync(SyncNote::UliReqSend { to: victim }))
                    },
                );
                if out == UliOutcome::Sent {
                    self.mark_uli(send_cycle, UliMarkKind::ReqSend { to: victim });
                    // Ring entries are stamped at the *post-seq* clock, not
                    // `send_cycle`: entering the sequencer can dispatch an
                    // incoming ULI handler on this core first, and the ring
                    // must stay sorted by time (the architectural send cycle
                    // lives in `uli_marks`).
                    self.flight.record(self.clock, FlightKind::UliReqSend { to: victim });
                }
                out
            }
            UliSendFault::Drop => {
                let out = self.seq(move |st, _, core| {
                    st.uli.drop_request(core, victim);
                    UliOutcome::Sent
                });
                self.flight.record(self.clock, FlightKind::FaultUliDrop);
                out
            }
            UliSendFault::Nack => {
                let out = self.seq(move |st, now, core| st.uli.forced_nack(core, victim, now));
                self.flight.record(self.clock, FlightKind::FaultUliNack);
                out
            }
            UliSendFault::Delay(extra) => {
                let out = self.seq(move |st, now, core| {
                    let out = st.uli.try_send_request(core, victim, payload, now);
                    if out == UliOutcome::Sent {
                        st.uli.delay_request(victim, extra);
                    }
                    out
                });
                self.flight.record(self.clock, FlightKind::FaultUliDelay { extra });
                out
            }
        };
        match out {
            UliOutcome::Nack { .. } => {
                self.flight.record(self.clock, FlightKind::UliNack { to: victim });
            }
            UliOutcome::Dead { .. } => {
                self.flight.record(self.clock, FlightKind::UliDead { to: victim });
            }
            _ => {}
        }
        self.charge(TimeCategory::Uli, 1);
        self.instructions += 1;
        if let UliOutcome::Nack { reply_at } | UliOutcome::Dead { reply_at } = out {
            let wait = reply_at.saturating_sub(self.clock);
            self.charge(TimeCategory::UliWait, wait);
        }
        out
    }

    /// Sends a ULI response back to `thief` (from inside a handler).
    pub fn uli_send_response(&mut self, thief: usize, payload: u64) {
        let send_cycle = self.now();
        self.seq_with(
            move |st, now, core| st.uli.send_response(core, thief, payload, now),
            |_| Some(MemOp::Sync(SyncNote::UliRespSend { to: thief })),
        );
        self.mark_uli(send_cycle, UliMarkKind::RespSend { to: thief });
        self.flight.record(self.clock, FlightKind::UliRespSend { to: thief });
        self.charge(TimeCategory::Uli, 1);
        self.instructions += 1;
    }

    /// Collects a ULI response if one has arrived.
    pub fn uli_poll_response(&mut self) -> Option<UliMessage> {
        let poll_cycle = self.now();
        let msg = self.seq_with(
            |st, now, core| st.uli.take_response(core, now),
            |m: &Option<UliMessage>| {
                m.as_ref().map(|m| MemOp::Sync(SyncNote::UliRespRecv { from: m.from }))
            },
        );
        if let Some(m) = &msg {
            self.mark_uli(poll_cycle, UliMarkKind::RespRecv { from: m.from });
            self.flight.record(self.clock, FlightKind::UliRespRecv { from: m.from });
        }
        self.charge(TimeCategory::UliWait, 1);
        self.instructions += 1;
        msg
    }

    /// Explicitly polls for an incoming ULI request and services it (used in
    /// wait loops; ordinary sequenced operations poll automatically).
    pub fn uli_poll(&mut self) {
        if self.handler.is_none() || self.in_handler {
            return;
        }
        // `seq` itself delivers (or fault-drops) any pending request.
        self.seq(|_, _, _| ());
    }

    // ------------------------------------------------------------------
    // Program lifecycle
    // ------------------------------------------------------------------

    /// Signals global completion (called by the main worker when the
    /// program's root task finishes).
    pub fn set_done(&mut self) {
        self.seq(|st, now, _| {
            st.done = true;
            st.done_time = st.done_time.max(now);
        });
        self.mark_progress();
    }

    /// Tells the liveness watchdog that real forward progress happened
    /// (a task executed, a steal completed). Free when no watchdog is
    /// armed; never affects simulated timing.
    pub fn mark_progress(&mut self) {
        self.shared.seq.mark_progress();
    }

    /// Whether a fault plan is armed on this run. Runtimes use this to
    /// switch on their hardened (timeout + fallback) protocols, which cost
    /// extra bookkeeping and are kept off the golden path.
    pub fn faults_active(&self) -> bool {
        self.faults.active()
    }

    /// Fault-injection hook for the runtime's victim selection: `true`
    /// forces this lookup to miss. Always `false` without an armed plan.
    pub fn fault_steal_miss(&mut self) -> bool {
        let miss = self.faults.on_steal_lookup();
        if miss {
            let t = self.now();
            self.flight.record(t, FlightKind::FaultStealMiss);
        }
        miss
    }

    /// Whether fail-stop crashes are armed in this run's fault plan (on
    /// any core). Runtimes gate their crash-recovery machinery on this;
    /// `false` guarantees none of it runs and the golden path is
    /// bit-for-bit unchanged.
    pub fn crash_armed(&self) -> bool {
        self.faults.crash_armed()
    }

    /// Whether this core's scheduled fail-stop is due. A pure host-side
    /// check (no sequencing, no cycle charge): runtimes poll it at
    /// scheduler safe points — never inside a ULI handler or while holding
    /// a simulated lock — and take the crash with [`CorePort::crash_now`].
    pub fn crash_pending(&self) -> bool {
        !self.in_handler && self.faults.crash_pending(self.now())
    }

    /// Takes this core's fail-stop: a sequenced operation that marks the
    /// core's ULI unit dead (all future steal requests answer
    /// [`UliOutcome::Dead`]) and records the crash. The caller — the
    /// runtime's scheduler loop — then unwinds its own task frames and
    /// either retires the core (permanent crash) or goes dormant until
    /// [`CorePort::revive_now`].
    pub fn crash_now(&mut self) {
        self.seq(|st, now, core| st.uli.set_dead(core, now));
        self.flight.record(self.clock, FlightKind::Crash);
        self.faults.note_crashed();
        // A crash is liveness-relevant: survivors need watchdog budget to
        // observe it and run recovery.
        self.mark_progress();
    }

    /// Revives this core after a crash (the `revive_after_cycles`
    /// rejoin): a sequenced operation clearing the dead flag. The runtime
    /// then re-enters its scheduler loop as a fresh worker.
    pub fn revive_now(&mut self) {
        self.seq(|st, _, core| st.uli.set_alive(core));
        self.flight.record(self.clock, FlightKind::Revive);
        self.mark_progress();
    }

    /// Cycles after its crash at which this core revives (0 = permanent).
    pub fn revive_after(&self) -> u64 {
        self.faults.revive_after()
    }

    /// Sequenced read of the dead-core set (every core that has
    /// fail-stopped, with no 64-core ceiling). The universal crash
    /// observer: survivors poll this in their wait loops to detect deaths
    /// even on runtimes that never send ULIs. Charges one idle cycle,
    /// like [`CorePort::is_done`].
    pub fn dead_mask(&mut self) -> CoreSet {
        let m = self.seq(|st, _, _| st.uli.dead_mask());
        self.charge(TimeCategory::Idle, 1);
        m
    }

    /// Faults injected on this core so far.
    pub fn fault_counters(&self) -> FaultCounters {
        self.faults.counters
    }

    /// Whether global completion has been signalled.
    pub fn is_done(&mut self) -> bool {
        let d = self.seq(|st, _, _| st.done);
        self.charge(TimeCategory::Idle, 1);
        d
    }

    pub(crate) fn into_report(mut self) -> PortReport {
        // Terminal flush: fold any coalesced compute without the poison
        // poll — report assembly runs after a worker has already unwound,
        // and panicking here again would lose the report (and abort the
        // process on the fiber backend).
        let pending = std::mem::take(&mut self.pending_compute);
        if pending > 0 {
            if let Some(t) = self.trace.as_mut() {
                t.push(crate::trace::TraceEvent {
                    start: self.clock,
                    cycles: pending,
                    category: TimeCategory::Compute,
                });
            }
            self.breakdown.add(TimeCategory::Compute, pending);
            self.clock += pending;
        }
        // Close the final attribution span so the spans tile [0, clock].
        let attr_spans = match self.attr.take() {
            Some(mut a) => {
                if self.clock > a.mark_clock {
                    a.spans.push(AttrSpan {
                        task: a.current,
                        start: a.mark_clock,
                        end: self.clock,
                        breakdown: self.breakdown.diff(&a.mark_breakdown),
                    });
                }
                a.spans
            }
            None => Vec::new(),
        };
        PortReport {
            clock: self.clock,
            breakdown: self.breakdown,
            instructions: self.instructions,
            trace: self.trace.unwrap_or_default(),
            uli_marks: self.uli_marks.unwrap_or_default(),
            faults: self.faults.counters,
            events: self.events.unwrap_or_default(),
            attr_spans,
            flight_total: self.flight.total(),
            flight: self.flight.tail(),
        }
    }
}

/// Everything one core hands back to the system driver, including partial
/// state from a panicked or watchdog-aborted worker.
pub(crate) struct PortReport {
    pub clock: u64,
    pub breakdown: TimeBreakdown,
    pub instructions: u64,
    pub trace: Vec<crate::trace::TraceEvent>,
    pub uli_marks: Vec<UliMark>,
    pub faults: FaultCounters,
    /// Checker events with their sequencer grant stamps (see
    /// `CorePort::last_stamp`); the engine merges per-core buffers by
    /// stamp to reconstruct grant order.
    pub events: Vec<(u64, MemEvent)>,
    pub attr_spans: Vec<AttrSpan>,
    /// Flight-recorder tail in chronological order (empty with a
    /// capacity-0 ring).
    pub flight: Vec<crate::flight::FlightEvent>,
    /// Events ever recorded on this core's ring (`flight` keeps the last
    /// capacity of them).
    pub flight_total: u64,
}
