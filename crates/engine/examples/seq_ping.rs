//! Micro-benchmark of the raw sequencer grant paths.
//!
//! `self`: one core enter/leave in a loop — every grant takes the fast
//! re-grant path. `pingpong`: two cores alternate strictly — every grant
//! is a cross-thread handoff (park + wake + context switch). The gap
//! between the two is the cost the fast path removes; the `pingpong`
//! number is the hard floor for cross-core sequenced ops on this host.
//!
//! Run: `cargo run --release -p bigtiny-engine --example seq_ping`

use bigtiny_engine::Sequencer;
use std::sync::Arc;
use std::time::Instant;

const OPS: u64 = 200_000;

fn main() {
    // Self re-grant: single core, always the global minimum.
    let seq = Sequencer::new(1);
    let t0 = Instant::now();
    for t in 0..OPS {
        seq.enter(0, t);
        seq.leave(0);
    }
    let dt = t0.elapsed().as_secs_f64();
    println!(
        "self:     {OPS} ops in {dt:.3}s  ({:.0} ops/s, {:.0} ns/op, {:.1}% fast)",
        OPS as f64 / dt,
        dt * 1e9 / OPS as f64,
        100.0 * seq.fast_grants() as f64 / seq.total_grants() as f64
    );
    seq.retire(0);

    // Ping-pong: two cores with interleaved times force a handoff per op.
    let seq = Arc::new(Sequencer::new(2));
    let t0 = Instant::now();
    let mut handles = Vec::new();
    for core in 0..2usize {
        let seq = Arc::clone(&seq);
        handles.push(std::thread::spawn(move || {
            let mut t = core as u64;
            for _ in 0..OPS / 2 {
                seq.enter(core, t);
                seq.leave(core);
                t += 2;
            }
            seq.retire(core);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let dt = t0.elapsed().as_secs_f64();
    println!(
        "pingpong: {OPS} ops in {dt:.3}s  ({:.0} ops/s, {:.0} ns/op, {:.1}% fast)",
        OPS as f64 / dt,
        dt * 1e9 / OPS as f64,
        100.0 * seq.fast_grants() as f64 / seq.total_grants() as f64
    );

    // Raw std mutex+condvar ping-pong: the host's floor for a strict
    // two-thread lockstep handoff, for comparison against the sequencer.
    let state = Arc::new((std::sync::Mutex::new(0u64), std::sync::Condvar::new()));
    let t0 = Instant::now();
    let mut handles = Vec::new();
    for parity in 0..2u64 {
        let state = Arc::clone(&state);
        handles.push(std::thread::spawn(move || {
            let (m, cv) = &*state;
            let mut g = m.lock().unwrap();
            while *g < OPS {
                if *g % 2 == parity {
                    *g += 1;
                    cv.notify_one();
                } else {
                    g = cv.wait(g).unwrap();
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let dt = t0.elapsed().as_secs_f64();
    println!(
        "raw cv:   {OPS} ops in {dt:.3}s  ({:.0} ops/s, {:.0} ns/op)",
        OPS as f64 / dt,
        dt * 1e9 / OPS as f64,
    );
}
