//! Property tests of the mesh model: metric properties of XY routing and
//! monotonicity of the latency function.

use proptest::prelude::*;

use bigtiny_mesh::{Mesh, MeshConfig, Tile, Topology, TrafficClass, UliNetwork, UliOutcome};

fn tile_strategy() -> impl Strategy<Value = Tile> {
    (0u16..8, 0u16..9).prop_map(|(x, y)| Tile::new(x, y))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Hop distance is a metric: symmetric, zero iff equal, triangle
    /// inequality.
    #[test]
    fn hops_form_a_metric(a in tile_strategy(), b in tile_strategy(), c in tile_strategy()) {
        prop_assert_eq!(a.hops_to(b), b.hops_to(a));
        prop_assert_eq!(a.hops_to(a), 0);
        prop_assert_eq!(a.hops_to(b) == 0, a == b);
        prop_assert!(a.hops_to(c) <= a.hops_to(b) + b.hops_to(c));
    }

    /// Latency grows monotonically with payload size and hop distance.
    #[test]
    fn latency_monotone(a in tile_strategy(), b in tile_strategy(), bytes in 0u64..512) {
        let mesh = Mesh::new(MeshConfig::paper_64_core());
        let l1 = mesh.latency(a, b, bytes);
        let l2 = mesh.latency(a, b, bytes + 16);
        prop_assert!(l2 >= l1, "serialization adds latency");
        let origin = Tile::new(0, 0);
        let near = Tile::new(1, 0);
        let far = Tile::new(7, 7);
        prop_assert!(mesh.latency(origin, far, bytes) >= mesh.latency(origin, near, bytes));
        prop_assert!(l1 >= 1, "every message costs at least a cycle");
    }

    /// Traffic accounting is exact: sending n messages of the same shape
    /// records n * (payload + header) bytes.
    #[test]
    fn traffic_accounting_exact(
        n in 1usize..50,
        payload in 0u64..128,
        a in tile_strategy(),
        b in tile_strategy())
    {
        let mut mesh = Mesh::new(MeshConfig::paper_64_core());
        for _ in 0..n {
            mesh.send(a, b, TrafficClass::WbReq, payload);
        }
        let header = mesh.config().header_bytes;
        prop_assert_eq!(mesh.stats().bytes(TrafficClass::WbReq), n as u64 * (payload + header));
        prop_assert_eq!(mesh.stats().messages(TrafficClass::WbReq), n as u64);
    }

    /// The ULI unit accepts at most one buffered request per core: any
    /// burst of sends to one victim yields exactly one success until it is
    /// serviced.
    #[test]
    fn uli_single_buffering(senders in proptest::collection::vec(0usize..15, 1..20)) {
        let mut uli = UliNetwork::new(Topology::new(4, 4), 16);
        let victim = 15;
        uli.set_enabled(victim, true);
        let mut successes = 0;
        for (i, s) in senders.iter().enumerate() {
            match uli.try_send_request(*s, victim, i as u64, 100 * i as u64) {
                UliOutcome::Sent => successes += 1,
                UliOutcome::Nack { reply_at } => prop_assert!(reply_at > 100 * i as u64),
            }
        }
        prop_assert_eq!(successes, 1, "single request buffer");
        prop_assert_eq!(uli.nack_count(), senders.len() as u64 - 1);
        // After servicing, the buffer frees up.
        prop_assert!(uli.take_request(victim, u64::MAX).is_some());
        prop_assert!(matches!(
            uli.try_send_request(0, victim, 9, 1_000_000),
            UliOutcome::Sent
        ));
    }
}
