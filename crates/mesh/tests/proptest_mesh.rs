//! Randomized-but-deterministic tests of the mesh model: metric properties
//! of XY routing and monotonicity of the latency function.
//!
//! These were originally `proptest` properties; they are now driven by the
//! simulator's own seeded [`XorShift64`] so the workspace has no external
//! dependencies and every CI run explores exactly the same cases.

use bigtiny_mesh::{
    Mesh, MeshConfig, Tile, Topology, TrafficClass, UliNetwork, UliOutcome, XorShift64,
};

fn random_tile(rng: &mut XorShift64) -> Tile {
    Tile::new(rng.next_below(8) as u16, rng.next_below(9) as u16)
}

/// Hop distance is a metric: symmetric, zero iff equal, triangle inequality.
#[test]
fn hops_form_a_metric() {
    let mut rng = XorShift64::new(0x4d45_5348_0001);
    for _ in 0..256 {
        let (a, b, c) = (random_tile(&mut rng), random_tile(&mut rng), random_tile(&mut rng));
        assert_eq!(a.hops_to(b), b.hops_to(a));
        assert_eq!(a.hops_to(a), 0);
        assert_eq!(a.hops_to(b) == 0, a == b);
        assert!(a.hops_to(c) <= a.hops_to(b) + b.hops_to(c));
    }
}

/// Latency grows monotonically with payload size and hop distance.
#[test]
fn latency_monotone() {
    let mesh = Mesh::new(MeshConfig::paper_64_core());
    let mut rng = XorShift64::new(0x4d45_5348_0002);
    for _ in 0..256 {
        let (a, b) = (random_tile(&mut rng), random_tile(&mut rng));
        let bytes = rng.next_below(512);
        let l1 = mesh.latency(a, b, bytes);
        let l2 = mesh.latency(a, b, bytes + 16);
        assert!(l2 >= l1, "serialization adds latency");
        let origin = Tile::new(0, 0);
        let near = Tile::new(1, 0);
        let far = Tile::new(7, 7);
        assert!(mesh.latency(origin, far, bytes) >= mesh.latency(origin, near, bytes));
        assert!(l1 >= 1, "every message costs at least a cycle");
    }
}

/// Traffic accounting is exact: sending n messages of the same shape records
/// n * (payload + header) bytes.
#[test]
fn traffic_accounting_exact() {
    let mut rng = XorShift64::new(0x4d45_5348_0003);
    for _ in 0..64 {
        let mut mesh = Mesh::new(MeshConfig::paper_64_core());
        let n = 1 + rng.next_below(49);
        let payload = rng.next_below(128);
        let (a, b) = (random_tile(&mut rng), random_tile(&mut rng));
        for _ in 0..n {
            mesh.send(a, b, TrafficClass::WbReq, payload);
        }
        let header = mesh.config().header_bytes;
        assert_eq!(mesh.stats().bytes(TrafficClass::WbReq), n * (payload + header));
        assert_eq!(mesh.stats().messages(TrafficClass::WbReq), n);
    }
}

/// The ULI unit accepts at most one buffered request per core: any burst of
/// sends to one victim yields exactly one success until it is serviced.
#[test]
fn uli_single_buffering() {
    let mut rng = XorShift64::new(0x4d45_5348_0004);
    for _ in 0..64 {
        let mut uli = UliNetwork::new(Topology::new(4, 4), 16);
        let victim = 15;
        uli.set_enabled(victim, true);
        let count = 1 + rng.next_below(19) as usize;
        let senders: Vec<usize> = (0..count).map(|_| rng.next_below(15) as usize).collect();
        let mut successes = 0;
        for (i, s) in senders.iter().enumerate() {
            match uli.try_send_request(*s, victim, i as u64, 100 * i as u64) {
                UliOutcome::Sent => successes += 1,
                UliOutcome::Nack { reply_at } => assert!(reply_at > 100 * i as u64),
                UliOutcome::Dead { .. } => panic!("no core was marked dead"),
            }
        }
        assert_eq!(successes, 1, "single request buffer");
        assert_eq!(uli.nack_count(), senders.len() as u64 - 1);
        // After servicing, the buffer frees up.
        assert!(uli.take_request(victim, u64::MAX).is_some());
        assert!(matches!(uli.try_send_request(0, victim, 9, 1_000_000), UliOutcome::Sent));
    }
}
