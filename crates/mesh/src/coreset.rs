//! Growable core bitset.
//!
//! Fault plans and mesh dead-masks historically used bare `u64` bitmasks,
//! which silently cap at core 63 — invisible until a configuration crosses
//! 64 cores (the paper's headline config has 256). `CoreSet` is a dense
//! bitset over `Vec<u64>` words with no upper bound on core index.
//!
//! The representation is kept *canonical* (no trailing zero words) so the
//! derived `PartialEq`/`Eq`/`Hash` treat two sets with the same members as
//! equal regardless of how they were built.

/// A set of core indices, backed by 64-bit words. Grows on demand; empty
/// set allocates nothing.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct CoreSet {
    words: Vec<u64>,
}

impl CoreSet {
    /// The empty set.
    pub const fn new() -> Self {
        CoreSet { words: Vec::new() }
    }

    /// A set holding exactly the bits of a legacy `u64` mask (cores 0..64).
    pub fn from_mask(mask: u64) -> Self {
        let mut s = CoreSet::new();
        if mask != 0 {
            s.words.push(mask);
        }
        s
    }

    /// Insert `core`. Idempotent.
    pub fn insert(&mut self, core: usize) {
        let w = core / 64;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        self.words[w] |= 1u64 << (core % 64);
    }

    /// Remove `core` if present.
    pub fn remove(&mut self, core: usize) {
        let w = core / 64;
        if w < self.words.len() {
            self.words[w] &= !(1u64 << (core % 64));
            self.canonicalize();
        }
    }

    /// Whether `core` is a member.
    pub fn contains(&self, core: usize) -> bool {
        let w = core / 64;
        w < self.words.len() && self.words[w] & (1u64 << (core % 64)) != 0
    }

    /// Whether the set has no members.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Number of members.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(wi * 64 + b)
            })
        })
    }

    /// Members of `self` that are not members of `other`.
    pub fn difference(&self, other: &CoreSet) -> CoreSet {
        let mut out = CoreSet {
            words: self
                .words
                .iter()
                .enumerate()
                .map(|(i, &w)| w & !other.words.get(i).copied().unwrap_or(0))
                .collect(),
        };
        out.canonicalize();
        out
    }

    /// Render as arbitrary-width hex (`0x0` for the empty set), matching
    /// what [`CoreSet::parse`] accepts. Words beyond the first 64 bits
    /// simply extend the hex string leftward.
    pub fn to_hex(&self) -> String {
        if self.words.is_empty() {
            return "0x0".to_owned();
        }
        let mut s = String::from("0x");
        let mut first = true;
        for &w in self.words.iter().rev() {
            if first {
                s.push_str(&format!("{w:x}"));
                first = false;
            } else {
                s.push_str(&format!("{w:016x}"));
            }
        }
        s
    }

    /// Parse a core set from a spec value: arbitrary-width `0x…` hex or a
    /// decimal `u64` mask. Returns `None` on malformed input.
    pub fn parse(s: &str) -> Option<Self> {
        let s = s.trim();
        if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
            if hex.is_empty() || !hex.chars().all(|c| c.is_ascii_hexdigit()) {
                return None;
            }
            // Consume 16 hex digits (one u64 word) at a time from the right.
            let digits: Vec<u8> = hex.bytes().collect();
            let mut words = Vec::new();
            let mut end = digits.len();
            while end > 0 {
                let start = end.saturating_sub(16);
                let chunk = std::str::from_utf8(&digits[start..end]).ok()?;
                words.push(u64::from_str_radix(chunk, 16).ok()?);
                end = start;
            }
            let mut out = CoreSet { words };
            out.canonicalize();
            Some(out)
        } else {
            s.parse::<u64>().ok().map(CoreSet::from_mask)
        }
    }

    fn canonicalize(&mut self) {
        while self.words.last() == Some(&0) {
            self.words.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove_past_64() {
        let mut s = CoreSet::new();
        assert!(s.is_empty());
        s.insert(5);
        s.insert(200);
        assert!(s.contains(5));
        assert!(s.contains(200));
        assert!(!s.contains(63));
        assert!(!s.contains(1000));
        assert_eq!(s.count(), 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![5, 200]);
        s.remove(200);
        assert!(!s.contains(200));
        assert_eq!(s.count(), 1);
        // Canonical after removing the high bit: equal to a fresh small set.
        assert_eq!(s, CoreSet::from_mask(1 << 5));
    }

    #[test]
    fn from_mask_matches_inserts() {
        let m = CoreSet::from_mask((1 << 5) | (1 << 9) | (1 << 13));
        let mut s = CoreSet::new();
        for c in [5, 9, 13] {
            s.insert(c);
        }
        assert_eq!(m, s);
        assert_eq!(m.count(), 3);
    }

    #[test]
    fn hex_round_trips_small_and_wide() {
        for set in [CoreSet::new(), CoreSet::from_mask(0x20), CoreSet::from_mask(u64::MAX), {
            let mut s = CoreSet::new();
            s.insert(200);
            s.insert(3);
            s
        }] {
            let hex = set.to_hex();
            assert_eq!(CoreSet::parse(&hex), Some(set.clone()), "{hex}");
        }
        // Decimal masks are accepted for legacy specs.
        assert_eq!(CoreSet::parse("32"), Some(CoreSet::from_mask(32)));
        assert_eq!(CoreSet::parse("0x20"), Some(CoreSet::from_mask(0x20)));
        assert_eq!(CoreSet::parse("0x"), None);
        assert_eq!(CoreSet::parse("0xzz"), None);
        assert_eq!(CoreSet::parse(""), None);
    }

    #[test]
    fn wide_hex_places_bits_correctly() {
        let mut s = CoreSet::new();
        s.insert(200);
        // Bit 200 = word 3 bit 8 → hex digit 50 positions up.
        let parsed = CoreSet::parse(&s.to_hex()).unwrap();
        assert!(parsed.contains(200));
        assert_eq!(parsed.count(), 1);
    }

    #[test]
    fn difference_finds_fresh_and_revived() {
        let mut old = CoreSet::new();
        old.insert(3);
        old.insert(100);
        let mut new = CoreSet::new();
        new.insert(100);
        new.insert(200);
        let fresh = new.difference(&old);
        assert_eq!(fresh.iter().collect::<Vec<_>>(), vec![200]);
        let revived = old.difference(&new);
        assert_eq!(revived.iter().collect::<Vec<_>>(), vec![3]);
        // Difference against a longer set trims correctly.
        assert!(new.difference(&new).is_empty());
    }
}
