//! The data OCN latency/accounting model and the dedicated ULI network.

use crate::topology::{Tile, Topology};
use crate::traffic::{TrafficClass, TrafficStats};

/// Parameters of the data on-chip network.
///
/// Defaults mirror Table II of the paper: XY routing, 16-byte flits, 1-cycle
/// channel latency, 1-cycle router latency, 8-byte message headers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MeshConfig {
    /// Physical layout of the mesh.
    pub topology: Topology,
    /// Cycles spent in each router on the path.
    pub router_cycles: u64,
    /// Cycles spent on each channel on the path.
    pub channel_cycles: u64,
    /// Flit width in bytes (serialization granularity).
    pub flit_bytes: u64,
    /// Per-message header/control overhead in bytes.
    pub header_bytes: u64,
}

impl MeshConfig {
    /// The 64-core system of Table II: an 8×8 mesh.
    pub fn paper_64_core() -> Self {
        MeshConfig {
            topology: Topology::new(8, 8),
            router_cycles: 1,
            channel_cycles: 1,
            flit_bytes: 16,
            header_bytes: 8,
        }
    }

    /// The 256-core system of Table V: an 8-row, 32-column mesh.
    pub fn paper_256_core() -> Self {
        MeshConfig { topology: Topology::new(8, 32), ..Self::paper_64_core() }
    }

    /// A custom mesh with default timing parameters.
    pub fn with_topology(topology: Topology) -> Self {
        MeshConfig { topology, ..Self::paper_64_core() }
    }
}

impl Default for MeshConfig {
    fn default() -> Self {
        Self::paper_64_core()
    }
}

/// The data on-chip network: computes message latencies and accounts traffic.
///
/// This is a latency-only model (no cycle-accurate link arbitration): a
/// message from `a` to `b` carrying `p` payload bytes takes
///
/// ```text
/// hops(a,b) * (router + channel) + (flits - 1) * channel + 1
/// ```
///
/// cycles, where `flits = ceil((p + header) / flit_bytes)`. Contention is
/// modelled downstream by the L2 bank and DRAM queueing in
/// `bigtiny-coherence`, which is where the paper's workloads actually queue.
#[derive(Clone, Debug)]
pub struct Mesh {
    config: MeshConfig,
    stats: TrafficStats,
}

impl Mesh {
    /// Creates a mesh network with the given configuration.
    pub fn new(config: MeshConfig) -> Self {
        Mesh { config, stats: TrafficStats::new() }
    }

    /// The configured topology.
    pub fn topology(&self) -> Topology {
        self.config.topology
    }

    /// The configuration.
    pub fn config(&self) -> &MeshConfig {
        &self.config
    }

    /// Latency in cycles for a message of `total_bytes` from `from` to `to`,
    /// without recording it.
    pub fn latency(&self, from: Tile, to: Tile, total_bytes: u64) -> u64 {
        let hops = from.hops_to(to) as u64;
        let flits = total_bytes.div_ceil(self.config.flit_bytes).max(1);
        hops * (self.config.router_cycles + self.config.channel_cycles)
            + (flits - 1) * self.config.channel_cycles
            + 1
    }

    /// Sends a message: records its bytes under `class` and returns its
    /// latency in cycles. `payload_bytes` excludes the header, which is added
    /// automatically.
    pub fn send(&mut self, from: Tile, to: Tile, class: TrafficClass, payload_bytes: u64) -> u64 {
        let total = payload_bytes + self.config.header_bytes;
        let hops = from.hops_to(to);
        self.stats.record(class, total, hops);
        self.latency(from, to, total)
    }

    /// Accumulated traffic statistics.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Clears accumulated statistics.
    pub fn reset_stats(&mut self) {
        self.stats = TrafficStats::new();
    }

    /// Number of unidirectional core-to-core links (for utilization).
    pub fn links(&self) -> u64 {
        let r = self.config.topology.rows() as u64;
        let c = self.config.topology.cols() as u64;
        // Horizontal links + vertical links (including the edge row), twice
        // for the two directions.
        2 * ((r + 1) * (c - 1) + c * r)
    }
}

/// A single-word user-level interrupt message.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct UliMessage {
    /// Sending core.
    pub from: usize,
    /// One machine word of payload (the paper's messages are single-word).
    pub payload: u64,
    /// Simulated cycle at which the message arrives at its destination.
    pub arrives_at: u64,
}

/// Result of attempting to send a ULI request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UliOutcome {
    /// The request was accepted and will be observed by the receiver.
    Sent,
    /// The receiver has ULI disabled or its request buffer is full; a NACK
    /// arrives back at the sender at `reply_at`.
    Nack {
        /// Cycle at which the sender observes the NACK.
        reply_at: u64,
    },
}

/// Per-core ULI unit state.
#[derive(Clone, Debug, Default)]
struct UliUnit {
    enabled: bool,
    pending_req: Option<UliMessage>,
    pending_resp: Option<UliMessage>,
}

/// The dedicated ULI mesh of Section IV: two virtual channels (request and
/// response), single-word messages, one buffered request and one buffered
/// response per core, NACK when the receiver is disabled or busy.
#[derive(Clone, Debug)]
pub struct UliNetwork {
    topology: Topology,
    per_hop_cycles: u64,
    units: Vec<UliUnit>,
    stats: TrafficStats,
    total_latency: u64,
    total_hops: u64,
    nacks: u64,
}

/// Payload + header size of a ULI message in bytes (one word + routing info).
const ULI_MESSAGE_BYTES: u64 = 8;

impl UliNetwork {
    /// Creates a ULI network over `topology` with `num_cores` endpoints.
    ///
    /// All cores start with ULI **disabled**; the runtime enables ULI when a
    /// worker enters its scheduling loop.
    pub fn new(topology: Topology, num_cores: usize) -> Self {
        assert!(num_cores <= topology.num_tiles(), "more cores than tiles");
        UliNetwork {
            topology,
            per_hop_cycles: 2, // 1-cycle router + 1-cycle channel, as Table II
            units: vec![UliUnit::default(); num_cores],
            stats: TrafficStats::new(),
            total_latency: 0,
            total_hops: 0,
            nacks: 0,
        }
    }

    fn latency(&self, from: usize, to: usize) -> (u64, u32) {
        let hops = self.topology.core_tile(from).hops_to(self.topology.core_tile(to));
        ((hops as u64) * self.per_hop_cycles + 1, hops)
    }

    fn record(&mut self, from: usize, to: usize) -> u64 {
        let (lat, hops) = self.latency(from, to);
        self.stats.record(TrafficClass::Uli, ULI_MESSAGE_BYTES, hops);
        self.total_latency += lat;
        self.total_hops += hops as u64;
        lat
    }

    /// Enables or disables ULI reception on `core`.
    pub fn set_enabled(&mut self, core: usize, enabled: bool) {
        self.units[core].enabled = enabled;
    }

    /// Whether `core` currently accepts ULIs.
    pub fn is_enabled(&self, core: usize) -> bool {
        self.units[core].enabled
    }

    /// Attempts to deliver a ULI request from core `from` to core `to` at
    /// cycle `now`.
    ///
    /// Returns [`UliOutcome::Nack`] if the receiver has ULI disabled or
    /// already has a buffered request; the NACK consumes a round trip.
    ///
    /// # Panics
    ///
    /// Panics if `from == to` — a core never interrupts itself.
    pub fn try_send_request(&mut self, from: usize, to: usize, payload: u64, now: u64) -> UliOutcome {
        assert_ne!(from, to, "a core cannot send a ULI to itself");
        let lat = self.record(from, to);
        let unit = &self.units[to];
        if !unit.enabled || unit.pending_req.is_some() {
            let back = self.record(to, from);
            self.nacks += 1;
            return UliOutcome::Nack { reply_at: now + lat + back };
        }
        self.units[to].pending_req = Some(UliMessage { from, payload, arrives_at: now + lat });
        UliOutcome::Sent
    }

    /// Removes and returns the pending request at `core` if one has arrived
    /// by cycle `now` **and** the core has ULI enabled.
    pub fn take_request(&mut self, core: usize, now: u64) -> Option<UliMessage> {
        if !self.units[core].enabled {
            return None;
        }
        match self.units[core].pending_req {
            Some(m) if m.arrives_at <= now => self.units[core].pending_req.take(),
            _ => None,
        }
    }

    /// Whether a request is buffered at `core` (arrived or in flight).
    pub fn has_pending_request(&self, core: usize) -> bool {
        self.units[core].pending_req.is_some()
    }

    /// Sends a ULI response from `from` back to `to` (the original thief).
    ///
    /// # Panics
    ///
    /// Panics if `to` already has a buffered response — the protocol allows a
    /// single outstanding steal per thief, so this indicates a runtime bug.
    pub fn send_response(&mut self, from: usize, to: usize, payload: u64, now: u64) {
        let lat = self.record(from, to);
        let unit = &mut self.units[to];
        assert!(unit.pending_resp.is_none(), "thief core {to} already has a buffered ULI response");
        unit.pending_resp = Some(UliMessage { from, payload, arrives_at: now + lat });
    }

    /// Removes and returns the response buffered at `core` if it has arrived
    /// by cycle `now`. Responses are accepted even while ULI is disabled.
    pub fn take_response(&mut self, core: usize, now: u64) -> Option<UliMessage> {
        match self.units[core].pending_resp {
            Some(m) if m.arrives_at <= now => self.units[core].pending_resp.take(),
            _ => None,
        }
    }

    /// Accumulated ULI traffic statistics.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Total ULI messages sent (requests, responses, and NACK replies).
    pub fn message_count(&self) -> u64 {
        self.stats.messages(TrafficClass::Uli)
    }

    /// Number of NACKed requests.
    pub fn nack_count(&self) -> u64 {
        self.nacks
    }

    /// Mean per-message latency in cycles (0 when no messages were sent).
    pub fn mean_latency(&self) -> f64 {
        let n = self.message_count();
        if n == 0 {
            0.0
        } else {
            self.total_latency as f64 / n as f64
        }
    }

    /// Mean per-message hop count.
    pub fn mean_hops(&self) -> f64 {
        let n = self.message_count();
        if n == 0 {
            0.0
        } else {
            self.total_hops as f64 / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> Mesh {
        Mesh::new(MeshConfig::paper_64_core())
    }

    #[test]
    fn zero_hop_message_still_costs_a_cycle() {
        let m = mesh();
        let t = Tile::new(2, 2);
        assert_eq!(m.latency(t, t, 8), 1);
    }

    #[test]
    fn latency_scales_with_hops_and_flits() {
        let m = mesh();
        let a = Tile::new(0, 0);
        let b = Tile::new(3, 0);
        // 3 hops * 2 cycles + 0 extra flits + 1
        assert_eq!(m.latency(a, b, 16), 7);
        // 72 bytes = 5 flits -> 4 extra serialization cycles
        assert_eq!(m.latency(a, b, 72), 11);
    }

    #[test]
    fn send_records_header_plus_payload() {
        let mut m = mesh();
        m.send(Tile::new(0, 0), Tile::new(1, 0), TrafficClass::WbReq, 64);
        assert_eq!(m.stats().bytes(TrafficClass::WbReq), 72);
        assert_eq!(m.stats().messages(TrafficClass::WbReq), 1);
    }

    #[test]
    fn reset_clears_stats() {
        let mut m = mesh();
        m.send(Tile::new(0, 0), Tile::new(1, 0), TrafficClass::CpuReq, 0);
        m.reset_stats();
        assert_eq!(m.stats().total_data_bytes(), 0);
    }

    #[test]
    fn uli_send_to_enabled_core_is_delivered_after_latency() {
        let mut u = UliNetwork::new(Topology::new(8, 8), 64);
        u.set_enabled(5, true);
        assert_eq!(u.try_send_request(0, 5, 42, 100), UliOutcome::Sent);
        // 5 hops * 2 + 1 = 11 cycles
        assert!(u.take_request(5, 105).is_none(), "must not arrive early");
        let m = u.take_request(5, 111).expect("arrived");
        assert_eq!(m.from, 0);
        assert_eq!(m.payload, 42);
        assert!(u.take_request(5, 200).is_none(), "taken exactly once");
    }

    #[test]
    fn uli_send_to_disabled_core_nacks() {
        let mut u = UliNetwork::new(Topology::new(8, 8), 64);
        match u.try_send_request(0, 1, 7, 0) {
            UliOutcome::Nack { reply_at } => assert_eq!(reply_at, 6), // 1 hop each way: (2+1)*2
            other => panic!("expected NACK, got {other:?}"),
        }
        assert_eq!(u.nack_count(), 1);
    }

    #[test]
    fn uli_busy_receiver_nacks_second_request() {
        let mut u = UliNetwork::new(Topology::new(8, 8), 64);
        u.set_enabled(9, true);
        assert_eq!(u.try_send_request(0, 9, 1, 0), UliOutcome::Sent);
        assert!(matches!(u.try_send_request(2, 9, 2, 0), UliOutcome::Nack { .. }));
    }

    #[test]
    fn uli_disabled_receiver_defers_buffered_request() {
        let mut u = UliNetwork::new(Topology::new(8, 8), 64);
        u.set_enabled(1, true);
        assert_eq!(u.try_send_request(0, 1, 3, 0), UliOutcome::Sent);
        u.set_enabled(1, false);
        assert!(u.take_request(1, 1000).is_none(), "disabled core does not service");
        u.set_enabled(1, true);
        assert!(u.take_request(1, 1000).is_some());
    }

    #[test]
    fn uli_response_round_trip() {
        let mut u = UliNetwork::new(Topology::new(8, 8), 64);
        u.set_enabled(8, true);
        u.try_send_request(0, 8, 0xdead, 0);
        let req = u.take_request(8, 100).unwrap();
        u.send_response(8, req.from, 0xbeef, 100);
        assert!(u.take_response(0, 100).is_none());
        let resp = u.take_response(0, 103).expect("1 hop back: 2+1 cycles");
        assert_eq!(resp.payload, 0xbeef);
        assert_eq!(resp.from, 8);
    }

    #[test]
    fn uli_stats_accumulate() {
        let mut u = UliNetwork::new(Topology::new(8, 8), 64);
        u.set_enabled(63, true);
        u.try_send_request(0, 63, 0, 0);
        u.send_response(63, 0, 0, 50);
        assert_eq!(u.message_count(), 2);
        assert!(u.mean_hops() > 13.9 && u.mean_hops() < 14.1);
        assert!(u.mean_latency() > 0.0);
    }

    #[test]
    #[should_panic(expected = "cannot send a ULI to itself")]
    fn uli_self_send_panics() {
        let mut u = UliNetwork::new(Topology::new(2, 2), 4);
        u.try_send_request(1, 1, 0, 0);
    }
}
