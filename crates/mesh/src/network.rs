//! The data OCN latency/accounting model and the dedicated ULI network.

use std::collections::VecDeque;

use crate::coreset::CoreSet;
use crate::rng::XorShift64;
use crate::topology::{Tile, Topology};
use crate::traffic::{TrafficClass, TrafficStats};

/// Parameters of the data on-chip network.
///
/// Defaults mirror Table II of the paper: XY routing, 16-byte flits, 1-cycle
/// channel latency, 1-cycle router latency, 8-byte message headers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MeshConfig {
    /// Physical layout of the mesh.
    pub topology: Topology,
    /// Cycles spent in each router on the path.
    pub router_cycles: u64,
    /// Cycles spent on each channel on the path.
    pub channel_cycles: u64,
    /// Flit width in bytes (serialization granularity).
    pub flit_bytes: u64,
    /// Per-message header/control overhead in bytes.
    pub header_bytes: u64,
}

impl MeshConfig {
    /// The 64-core system of Table II: an 8×8 mesh.
    pub fn paper_64_core() -> Self {
        MeshConfig {
            topology: Topology::new(8, 8),
            router_cycles: 1,
            channel_cycles: 1,
            flit_bytes: 16,
            header_bytes: 8,
        }
    }

    /// The 256-core system of Table V: an 8-row, 32-column mesh.
    pub fn paper_256_core() -> Self {
        MeshConfig { topology: Topology::new(8, 32), ..Self::paper_64_core() }
    }

    /// A custom mesh with default timing parameters.
    pub fn with_topology(topology: Topology) -> Self {
        MeshConfig { topology, ..Self::paper_64_core() }
    }
}

impl Default for MeshConfig {
    fn default() -> Self {
        Self::paper_64_core()
    }
}

/// The data on-chip network: computes message latencies and accounts traffic.
///
/// This is a latency-only model (no cycle-accurate link arbitration): a
/// message from `a` to `b` carrying `p` payload bytes takes
///
/// ```text
/// hops(a,b) * (router + channel) + (flits - 1) * channel + 1
/// ```
///
/// cycles, where `flits = ceil((p + header) / flit_bytes)`. Contention is
/// modelled downstream by the L2 bank and DRAM queueing in
/// `bigtiny-coherence`, which is where the paper's workloads actually queue.
#[derive(Clone, Debug)]
pub struct Mesh {
    config: MeshConfig,
    stats: TrafficStats,
    faults: Option<SpikeState>,
}

/// Deterministic latency-spike injection for a [`Mesh`] (fault testing).
///
/// Each sent message independently suffers an extra `spike_cycles` of latency
/// with probability `spike_per_mille`/1000, decided by a seeded xorshift
/// stream. Message order on a mesh is deterministic under the simulator's
/// global token sequencing, so a given seed always spikes the same messages.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MeshFaults {
    /// Per-message spike probability in thousandths (0 = never, 1000 = all).
    pub spike_per_mille: u32,
    /// Extra cycles added to a spiked message's latency.
    pub spike_cycles: u64,
    /// Seed of the decision stream.
    pub seed: u64,
}

#[derive(Clone, Debug)]
struct SpikeState {
    per_mille: u32,
    extra: u64,
    rng: XorShift64,
    spikes: u64,
}

impl Mesh {
    /// Creates a mesh network with the given configuration.
    pub fn new(config: MeshConfig) -> Self {
        Mesh { config, stats: TrafficStats::new(), faults: None }
    }

    /// Arms (or, with `None`, disarms) deterministic latency-spike
    /// injection. The golden path — no faults armed — is entirely
    /// unaffected.
    pub fn set_faults(&mut self, faults: Option<MeshFaults>) {
        self.faults = faults.filter(|f| f.spike_per_mille > 0).map(|f| SpikeState {
            per_mille: f.spike_per_mille.min(1000),
            extra: f.spike_cycles,
            rng: XorShift64::new(f.seed ^ 0x6d65_7368_5f66_6c74),
            spikes: 0,
        });
    }

    /// Number of injected latency spikes so far (0 when faults are off).
    pub fn fault_spikes(&self) -> u64 {
        self.faults.as_ref().map_or(0, |s| s.spikes)
    }

    /// The configured topology.
    pub fn topology(&self) -> Topology {
        self.config.topology
    }

    /// The configuration.
    pub fn config(&self) -> &MeshConfig {
        &self.config
    }

    /// Latency in cycles for a message of `total_bytes` from `from` to `to`,
    /// without recording it.
    pub fn latency(&self, from: Tile, to: Tile, total_bytes: u64) -> u64 {
        let hops = from.hops_to(to) as u64;
        let flits = total_bytes.div_ceil(self.config.flit_bytes).max(1);
        hops * (self.config.router_cycles + self.config.channel_cycles)
            + (flits - 1) * self.config.channel_cycles
            + 1
    }

    /// Sends a message: records its bytes under `class` and returns its
    /// latency in cycles. `payload_bytes` excludes the header, which is added
    /// automatically.
    pub fn send(&mut self, from: Tile, to: Tile, class: TrafficClass, payload_bytes: u64) -> u64 {
        let total = payload_bytes + self.config.header_bytes;
        let hops = from.hops_to(to);
        self.stats.record(class, total, hops);
        let mut lat = self.latency(from, to, total);
        if let Some(f) = self.faults.as_mut() {
            if f.rng.next_below(1000) < f.per_mille as u64 {
                f.spikes += 1;
                lat += f.extra;
            }
        }
        lat
    }

    /// Accumulated traffic statistics.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Clears accumulated statistics.
    pub fn reset_stats(&mut self) {
        self.stats = TrafficStats::new();
    }

    /// Number of unidirectional core-to-core links (for utilization).
    pub fn links(&self) -> u64 {
        let r = self.config.topology.rows() as u64;
        let c = self.config.topology.cols() as u64;
        // Horizontal links + vertical links (including the edge row), twice
        // for the two directions.
        2 * ((r + 1) * (c - 1) + c * r)
    }
}

/// A single-word user-level interrupt message.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct UliMessage {
    /// Sending core.
    pub from: usize,
    /// One machine word of payload (the paper's messages are single-word).
    pub payload: u64,
    /// Simulated cycle at which the message arrives at its destination.
    pub arrives_at: u64,
}

/// Result of attempting to send a ULI request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UliOutcome {
    /// The request was accepted and will be observed by the receiver.
    Sent,
    /// The receiver has ULI disabled or its request buffer is full; a NACK
    /// arrives back at the sender at `reply_at`.
    Nack {
        /// Cycle at which the sender observes the NACK.
        reply_at: u64,
    },
    /// The receiver's core has fail-stopped: its ULI unit answers with a
    /// dead indication (distinguishable from a busy NACK, so thieves can
    /// quarantine the victim and trigger recovery instead of retrying).
    Dead {
        /// Cycle at which the sender observes the dead reply.
        reply_at: u64,
    },
}

/// Per-core ULI unit state.
#[derive(Clone, Debug, Default)]
struct UliUnit {
    enabled: bool,
    /// The core fail-stopped: every future request is answered with
    /// [`UliOutcome::Dead`] and buffered requests are never serviced.
    dead: bool,
    pending_req: Option<UliMessage>,
    pending_resp: VecDeque<UliMessage>,
}

/// Upper bound on buffered responses at one thief core.
///
/// On the golden path the protocol allows a single outstanding steal per
/// thief, so at most one response is ever in flight. Under fault injection a
/// thief may time out on a slow steal and issue a new one before the stale
/// response drains, so a small queue is needed; anything deeper than this cap
/// indicates a runtime bug, not a fault.
const ULI_RESP_QUEUE_CAP: usize = 4;

/// A crash-consistent snapshot of one core's ULI unit, for diagnostics.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct UliCoreState {
    /// Whether the core currently accepts ULI requests.
    pub enabled: bool,
    /// Whether the core has fail-stopped (quarantined, expected-silent —
    /// distinct from a hung core, which the watchdog poisons).
    pub dead: bool,
    /// Origin core of the buffered request, if any.
    pub pending_req_from: Option<usize>,
    /// Arrival cycle of the buffered request, if any.
    pub pending_req_arrives_at: Option<u64>,
    /// Number of responses buffered at (in flight to) this core.
    pub pending_responses: usize,
}

/// The dedicated ULI mesh of Section IV: two virtual channels (request and
/// response), single-word messages, one buffered request and one buffered
/// response per core, NACK when the receiver is disabled or busy.
#[derive(Clone, Debug)]
pub struct UliNetwork {
    topology: Topology,
    per_hop_cycles: u64,
    units: Vec<UliUnit>,
    stats: TrafficStats,
    total_latency: u64,
    total_hops: u64,
    nacks: u64,
    drops: u64,
}

/// Payload + header size of a ULI message in bytes (one word + routing info).
const ULI_MESSAGE_BYTES: u64 = 8;

impl UliNetwork {
    /// Creates a ULI network over `topology` with `num_cores` endpoints.
    ///
    /// All cores start with ULI **disabled**; the runtime enables ULI when a
    /// worker enters its scheduling loop.
    pub fn new(topology: Topology, num_cores: usize) -> Self {
        assert!(num_cores <= topology.num_tiles(), "more cores than tiles");
        UliNetwork {
            topology,
            per_hop_cycles: 2, // 1-cycle router + 1-cycle channel, as Table II
            units: vec![UliUnit::default(); num_cores],
            stats: TrafficStats::new(),
            total_latency: 0,
            total_hops: 0,
            nacks: 0,
            drops: 0,
        }
    }

    fn latency(&self, from: usize, to: usize) -> (u64, u32) {
        let hops = self.topology.core_tile(from).hops_to(self.topology.core_tile(to));
        ((hops as u64) * self.per_hop_cycles + 1, hops)
    }

    fn record(&mut self, from: usize, to: usize) -> u64 {
        let (lat, hops) = self.latency(from, to);
        self.stats.record(TrafficClass::Uli, ULI_MESSAGE_BYTES, hops);
        self.total_latency += lat;
        self.total_hops += hops as u64;
        lat
    }

    /// Enables or disables ULI reception on `core`.
    pub fn set_enabled(&mut self, core: usize, enabled: bool) {
        self.units[core].enabled = enabled;
    }

    /// Whether `core` currently accepts ULIs.
    pub fn is_enabled(&self, core: usize) -> bool {
        self.units[core].enabled
    }

    /// Attempts to deliver a ULI request from core `from` to core `to` at
    /// cycle `now`.
    ///
    /// Returns [`UliOutcome::Nack`] if the receiver has ULI disabled or
    /// already has a buffered request; the NACK consumes a round trip.
    ///
    /// # Panics
    ///
    /// Panics if `from == to` — a core never interrupts itself.
    pub fn try_send_request(
        &mut self,
        from: usize,
        to: usize,
        payload: u64,
        now: u64,
    ) -> UliOutcome {
        assert_ne!(from, to, "a core cannot send a ULI to itself");
        let lat = self.record(from, to);
        let unit = &self.units[to];
        if unit.dead {
            let back = self.record(to, from);
            return UliOutcome::Dead { reply_at: now + lat + back };
        }
        if !unit.enabled || unit.pending_req.is_some() {
            let back = self.record(to, from);
            self.nacks += 1;
            return UliOutcome::Nack { reply_at: now + lat + back };
        }
        self.units[to].pending_req = Some(UliMessage { from, payload, arrives_at: now + lat });
        UliOutcome::Sent
    }

    /// Removes and returns the pending request at `core` if one has arrived
    /// by cycle `now` **and** the core has ULI enabled.
    pub fn take_request(&mut self, core: usize, now: u64) -> Option<UliMessage> {
        if !self.units[core].enabled || self.units[core].dead {
            return None;
        }
        match self.units[core].pending_req {
            Some(m) if m.arrives_at <= now => self.units[core].pending_req.take(),
            _ => None,
        }
    }

    /// Whether a request is buffered at `core` (arrived or in flight).
    pub fn has_pending_request(&self, core: usize) -> bool {
        self.units[core].pending_req.is_some()
    }

    /// Sends a ULI response from `from` back to `to` (the original thief).
    ///
    /// Responses queue in arrival order. On the golden path at most one is
    /// ever buffered (one outstanding steal per thief); under fault injection
    /// a stale response from a timed-out steal can coexist briefly with a
    /// fresh one.
    ///
    /// # Panics
    ///
    /// Panics if `to` has more than [`ULI_RESP_QUEUE_CAP`] responses buffered
    /// — that is a runtime bug, not a reachable fault state.
    pub fn send_response(&mut self, from: usize, to: usize, payload: u64, now: u64) {
        let lat = self.record(from, to);
        let unit = &mut self.units[to];
        assert!(
            unit.pending_resp.len() < ULI_RESP_QUEUE_CAP,
            "thief core {to} has {} buffered ULI responses (runtime bug)",
            unit.pending_resp.len()
        );
        unit.pending_resp.push_back(UliMessage { from, payload, arrives_at: now + lat });
    }

    /// Removes and returns the oldest response buffered at `core` if it has
    /// arrived by cycle `now`. Responses are accepted even while ULI is
    /// disabled.
    pub fn take_response(&mut self, core: usize, now: u64) -> Option<UliMessage> {
        match self.units[core].pending_resp.front() {
            Some(m) if m.arrives_at <= now => self.units[core].pending_resp.pop_front(),
            _ => None,
        }
    }

    /// Silently drops a request from `from` to `to`: the request's bytes are
    /// charged to the network but the receiver never observes it and no NACK
    /// comes back. Used by fault injection to model a lost message; the
    /// sender believes the send succeeded.
    pub fn drop_request(&mut self, from: usize, to: usize) {
        let _ = self.record(from, to);
        self.drops += 1;
    }

    /// Number of requests silently dropped by fault injection.
    pub fn drop_count(&self) -> u64 {
        self.drops
    }

    /// Injects a forced NACK for a request from `from` to `to`: the request
    /// and its NACK reply are charged to the network as usual, but the
    /// receiver never observes the request. Used by fault injection to model
    /// a receiver whose request buffer appears full.
    pub fn forced_nack(&mut self, from: usize, to: usize, now: u64) -> UliOutcome {
        let lat = self.record(from, to);
        let back = self.record(to, from);
        self.nacks += 1;
        UliOutcome::Nack { reply_at: now + lat + back }
    }

    /// Delays the request currently buffered at `core` by `extra` cycles, if
    /// one exists. Used by fault injection to model in-network delay.
    pub fn delay_request(&mut self, core: usize, extra: u64) {
        if let Some(m) = self.units[core].pending_req.as_mut() {
            m.arrives_at += extra;
        }
    }

    /// Fail-stops `core`'s ULI unit at cycle `now`: every future request
    /// is answered [`UliOutcome::Dead`], and buffered requests are never
    /// serviced. A request already buffered (its sender is committed to
    /// waiting for a response) is answered with an immediate payload-0
    /// "miss" response so the waiting thief unblocks — it learns the
    /// victim is dead on its next attempt.
    pub fn set_dead(&mut self, core: usize, now: u64) {
        self.units[core].dead = true;
        if let Some(req) = self.units[core].pending_req.take() {
            self.send_response(core, req.from, 0, now);
        }
    }

    /// Revives `core`'s ULI unit (the core rejoins the computation). ULI
    /// reception stays disabled until the core re-enables it.
    pub fn set_alive(&mut self, core: usize) {
        self.units[core].dead = false;
    }

    /// Whether `core`'s ULI unit has fail-stopped.
    pub fn is_dead(&self, core: usize) -> bool {
        self.units[core].dead
    }

    /// Set of currently-dead cores. Unbounded in core index: a 256-core
    /// mesh reports a quarantined core 200 just like core 2.
    pub fn dead_mask(&self) -> CoreSet {
        let mut dead = CoreSet::new();
        for (i, u) in self.units.iter().enumerate() {
            if u.dead {
                dead.insert(i);
            }
        }
        dead
    }

    /// A crash-consistent snapshot of `core`'s ULI unit for diagnostics.
    pub fn unit_state(&self, core: usize) -> UliCoreState {
        let u = &self.units[core];
        UliCoreState {
            enabled: u.enabled,
            dead: u.dead,
            pending_req_from: u.pending_req.map(|m| m.from),
            pending_req_arrives_at: u.pending_req.map(|m| m.arrives_at),
            pending_responses: u.pending_resp.len(),
        }
    }

    /// Accumulated ULI traffic statistics.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Total ULI messages sent (requests, responses, and NACK replies).
    pub fn message_count(&self) -> u64 {
        self.stats.messages(TrafficClass::Uli)
    }

    /// Number of NACKed requests.
    pub fn nack_count(&self) -> u64 {
        self.nacks
    }

    /// Mean per-message latency in cycles (0 when no messages were sent).
    pub fn mean_latency(&self) -> f64 {
        let n = self.message_count();
        if n == 0 {
            0.0
        } else {
            self.total_latency as f64 / n as f64
        }
    }

    /// Mean per-message hop count.
    pub fn mean_hops(&self) -> f64 {
        let n = self.message_count();
        if n == 0 {
            0.0
        } else {
            self.total_hops as f64 / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> Mesh {
        Mesh::new(MeshConfig::paper_64_core())
    }

    #[test]
    fn zero_hop_message_still_costs_a_cycle() {
        let m = mesh();
        let t = Tile::new(2, 2);
        assert_eq!(m.latency(t, t, 8), 1);
    }

    #[test]
    fn latency_scales_with_hops_and_flits() {
        let m = mesh();
        let a = Tile::new(0, 0);
        let b = Tile::new(3, 0);
        // 3 hops * 2 cycles + 0 extra flits + 1
        assert_eq!(m.latency(a, b, 16), 7);
        // 72 bytes = 5 flits -> 4 extra serialization cycles
        assert_eq!(m.latency(a, b, 72), 11);
    }

    #[test]
    fn send_records_header_plus_payload() {
        let mut m = mesh();
        m.send(Tile::new(0, 0), Tile::new(1, 0), TrafficClass::WbReq, 64);
        assert_eq!(m.stats().bytes(TrafficClass::WbReq), 72);
        assert_eq!(m.stats().messages(TrafficClass::WbReq), 1);
    }

    #[test]
    fn reset_clears_stats() {
        let mut m = mesh();
        m.send(Tile::new(0, 0), Tile::new(1, 0), TrafficClass::CpuReq, 0);
        m.reset_stats();
        assert_eq!(m.stats().total_data_bytes(), 0);
    }

    #[test]
    fn uli_send_to_enabled_core_is_delivered_after_latency() {
        let mut u = UliNetwork::new(Topology::new(8, 8), 64);
        u.set_enabled(5, true);
        assert_eq!(u.try_send_request(0, 5, 42, 100), UliOutcome::Sent);
        // 5 hops * 2 + 1 = 11 cycles
        assert!(u.take_request(5, 105).is_none(), "must not arrive early");
        let m = u.take_request(5, 111).expect("arrived");
        assert_eq!(m.from, 0);
        assert_eq!(m.payload, 42);
        assert!(u.take_request(5, 200).is_none(), "taken exactly once");
    }

    #[test]
    fn uli_send_to_disabled_core_nacks() {
        let mut u = UliNetwork::new(Topology::new(8, 8), 64);
        match u.try_send_request(0, 1, 7, 0) {
            UliOutcome::Nack { reply_at } => assert_eq!(reply_at, 6), // 1 hop each way: (2+1)*2
            other => panic!("expected NACK, got {other:?}"),
        }
        assert_eq!(u.nack_count(), 1);
    }

    #[test]
    fn uli_busy_receiver_nacks_second_request() {
        let mut u = UliNetwork::new(Topology::new(8, 8), 64);
        u.set_enabled(9, true);
        assert_eq!(u.try_send_request(0, 9, 1, 0), UliOutcome::Sent);
        assert!(matches!(u.try_send_request(2, 9, 2, 0), UliOutcome::Nack { .. }));
    }

    #[test]
    fn uli_disabled_receiver_defers_buffered_request() {
        let mut u = UliNetwork::new(Topology::new(8, 8), 64);
        u.set_enabled(1, true);
        assert_eq!(u.try_send_request(0, 1, 3, 0), UliOutcome::Sent);
        u.set_enabled(1, false);
        assert!(u.take_request(1, 1000).is_none(), "disabled core does not service");
        u.set_enabled(1, true);
        assert!(u.take_request(1, 1000).is_some());
    }

    #[test]
    fn uli_response_round_trip() {
        let mut u = UliNetwork::new(Topology::new(8, 8), 64);
        u.set_enabled(8, true);
        u.try_send_request(0, 8, 0xdead, 0);
        let req = u.take_request(8, 100).unwrap();
        u.send_response(8, req.from, 0xbeef, 100);
        assert!(u.take_response(0, 100).is_none());
        let resp = u.take_response(0, 103).expect("1 hop back: 2+1 cycles");
        assert_eq!(resp.payload, 0xbeef);
        assert_eq!(resp.from, 8);
    }

    #[test]
    fn uli_stats_accumulate() {
        let mut u = UliNetwork::new(Topology::new(8, 8), 64);
        u.set_enabled(63, true);
        u.try_send_request(0, 63, 0, 0);
        u.send_response(63, 0, 0, 50);
        assert_eq!(u.message_count(), 2);
        assert!(u.mean_hops() > 13.9 && u.mean_hops() < 14.1);
        assert!(u.mean_latency() > 0.0);
    }

    /// Regression pin: a quiet ULI network (idle runtimes, baseline setups)
    /// must report finite means, never NaN from 0/0.
    #[test]
    fn uli_zero_message_means_are_finite() {
        let u = UliNetwork::new(Topology::new(8, 8), 64);
        assert_eq!(u.message_count(), 0);
        assert_eq!(u.mean_latency(), 0.0);
        assert_eq!(u.mean_hops(), 0.0);
        assert!(u.mean_latency().is_finite() && u.mean_hops().is_finite());
    }

    #[test]
    #[should_panic(expected = "cannot send a ULI to itself")]
    fn uli_self_send_panics() {
        let mut u = UliNetwork::new(Topology::new(2, 2), 4);
        u.try_send_request(1, 1, 0, 0);
    }

    #[test]
    fn uli_responses_queue_in_order() {
        let mut u = UliNetwork::new(Topology::new(8, 8), 64);
        u.send_response(1, 0, 10, 0);
        u.send_response(2, 0, 20, 0);
        let a = u.take_response(0, 1000).unwrap();
        let b = u.take_response(0, 1000).unwrap();
        assert_eq!((a.payload, b.payload), (10, 20));
        assert!(u.take_response(0, 1000).is_none());
    }

    #[test]
    #[should_panic(expected = "runtime bug")]
    fn uli_response_queue_overflow_panics() {
        let mut u = UliNetwork::new(Topology::new(8, 8), 64);
        for i in 0..5 {
            u.send_response(1, 0, i, 0);
        }
    }

    #[test]
    fn forced_nack_charges_round_trip_and_counts() {
        let mut u = UliNetwork::new(Topology::new(8, 8), 64);
        u.set_enabled(1, true);
        match u.forced_nack(0, 1, 0) {
            UliOutcome::Nack { reply_at } => assert_eq!(reply_at, 6),
            other => panic!("expected NACK, got {other:?}"),
        }
        assert_eq!(u.nack_count(), 1);
        assert_eq!(u.message_count(), 2);
        assert!(!u.has_pending_request(1), "receiver never sees the request");
    }

    #[test]
    fn delay_request_pushes_arrival_out() {
        let mut u = UliNetwork::new(Topology::new(8, 8), 64);
        u.set_enabled(1, true);
        assert_eq!(u.try_send_request(0, 1, 5, 0), UliOutcome::Sent);
        u.delay_request(1, 100);
        assert!(u.take_request(1, 50).is_none(), "delayed past original arrival");
        assert!(u.take_request(1, 103).is_some());
    }

    #[test]
    fn unit_state_snapshots_pending_work() {
        let mut u = UliNetwork::new(Topology::new(8, 8), 64);
        u.set_enabled(3, true);
        u.try_send_request(0, 3, 1, 0);
        u.send_response(3, 0, 2, 0);
        let s = u.unit_state(3);
        assert!(s.enabled);
        assert_eq!(s.pending_req_from, Some(0));
        assert!(s.pending_req_arrives_at.is_some());
        let thief = u.unit_state(0);
        assert_eq!(thief.pending_responses, 1);
    }

    #[test]
    fn dead_unit_answers_dead_and_never_services() {
        let mut u = UliNetwork::new(Topology::new(8, 8), 64);
        u.set_enabled(1, true);
        u.set_dead(1, 100);
        assert!(u.is_dead(1));
        assert_eq!(u.dead_mask(), CoreSet::from_mask(1 << 1));
        match u.try_send_request(0, 1, 7, 100) {
            UliOutcome::Dead { reply_at } => assert_eq!(reply_at, 106), // 1 hop each way
            other => panic!("expected Dead, got {other:?}"),
        }
        assert!(u.take_request(1, 10_000).is_none(), "a dead core services nothing");
        u.set_alive(1);
        assert!(!u.is_dead(1));
        assert!(u.dead_mask().is_empty());
        assert_eq!(u.try_send_request(0, 1, 7, 200), UliOutcome::Sent);
    }

    /// Regression: the dead set must represent cores ≥ 64. The old `u64`
    /// fold silently truncated at core 63, so a quarantined core 200 in a
    /// 256-core mesh was invisible to recovery.
    #[test]
    fn dead_mask_represents_cores_past_64() {
        let mut u = UliNetwork::new(Topology::new(8, 32), 256);
        u.set_enabled(200, true);
        u.set_dead(200, 0);
        u.set_dead(70, 0);
        u.set_dead(3, 0);
        let dead = u.dead_mask();
        assert_eq!(dead.iter().collect::<Vec<_>>(), vec![3, 70, 200]);
        match u.try_send_request(0, 200, 7, 100) {
            UliOutcome::Dead { .. } => {}
            other => panic!("expected Dead, got {other:?}"),
        }
        u.set_alive(200);
        assert_eq!(u.dead_mask().iter().collect::<Vec<_>>(), vec![3, 70]);
    }

    #[test]
    fn death_with_buffered_request_unblocks_the_waiting_thief() {
        let mut u = UliNetwork::new(Topology::new(8, 8), 64);
        u.set_enabled(1, true);
        assert_eq!(u.try_send_request(0, 1, 7, 0), UliOutcome::Sent);
        u.set_dead(1, 50);
        // The committed thief gets a payload-0 miss response instead of
        // waiting forever on a core that will never service the request.
        let resp = u.take_response(0, 60).expect("unblocking response");
        assert_eq!(resp.payload, 0);
        assert_eq!(resp.from, 1);
        assert!(!u.has_pending_request(1));
    }

    #[test]
    fn mesh_spikes_are_deterministic_and_counted() {
        let run = |seed| {
            let mut m = mesh();
            m.set_faults(Some(MeshFaults { spike_per_mille: 500, spike_cycles: 40, seed }));
            let mut lats = Vec::new();
            for i in 0..64u64 {
                let a = Tile::new((i % 8) as u16, 0);
                let b = Tile::new(0, (i % 8) as u16);
                lats.push(m.send(a, b, TrafficClass::CpuReq, 16));
            }
            (lats, m.fault_spikes())
        };
        let (l1, s1) = run(7);
        let (l2, s2) = run(7);
        assert_eq!(l1, l2, "same seed, same spikes");
        assert_eq!(s1, s2);
        assert!(s1 > 0, "a 50% plan must spike some of 64 messages");
        let (l3, _) = run(8);
        assert_ne!(l1, l3, "different seed, different spike pattern");
    }

    #[test]
    fn mesh_without_faults_never_spikes() {
        let mut m = mesh();
        m.set_faults(Some(MeshFaults { spike_per_mille: 0, spike_cycles: 40, seed: 1 }));
        let base = m.latency(Tile::new(0, 0), Tile::new(3, 0), 24);
        assert_eq!(m.send(Tile::new(0, 0), Tile::new(3, 0), TrafficClass::CpuReq, 16), base);
        assert_eq!(m.fault_spikes(), 0);
    }
}
