//! A tiny, portable, deterministic PRNG for simulation decisions.
//!
//! Victim selection in the work-stealing runtime must be random (the paper
//! uses random victim selection) but reproducible bit-for-bit across
//! platforms and runs, so the simulator uses its own xorshift64* generator
//! rather than an external crate whose stream might change between versions.

/// A seeded xorshift64* generator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from `seed` (a zero seed is remapped to a fixed
    /// nonzero constant, since xorshift has an all-zero fixed point).
    pub fn new(seed: u64) -> Self {
        XorShift64 { state: if seed == 0 { 0x9e3779b97f4a7c15 } else { seed } }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }

    /// Uniform value in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift bounded sampling; bias is negligible for the small
        // bounds (core counts) used here.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = XorShift64::new(1);
        let mut b = XorShift64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut z = XorShift64::new(0);
        assert_ne!(z.next_u64(), 0);
    }

    #[test]
    fn bounded_values_in_range() {
        let mut r = XorShift64::new(7);
        for _ in 0..1000 {
            assert!(r.next_below(5) < 5);
        }
        // All residues eventually hit.
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[r.next_below(5) as usize] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = XorShift64::new(9);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        XorShift64::new(1).next_below(0);
    }
}
