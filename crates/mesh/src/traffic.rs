//! Traffic categories and byte accounting, matching Figure 8 of the paper.

use std::fmt;
use std::ops::{Add, AddAssign};

/// The message categories of the paper's Figure 8 network-traffic breakdown.
///
/// * `CpuReq` — requests from an L1 to the L2 (loads, stores, upgrades).
/// * `WbReq` — write-back / write-through data from an L1 to the L2.
/// * `DataResp` — data responses from the L2 to an L1.
/// * `SyncReq` / `SyncResp` — atomic-memory-operation traffic.
/// * `CohReq` / `CohResp` — coherence traffic (invalidations, ownership
///   recalls and their acknowledgements).
/// * `DramReq` / `DramResp` — traffic between the L2 and DRAM controllers.
/// * `Uli` — user-level-interrupt messages (dedicated network; reported
///   separately, never part of the data-OCN totals).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum TrafficClass {
    /// L1 → L2 control requests.
    CpuReq,
    /// L1 → L2 write-back / write-through payloads.
    WbReq,
    /// L2 → L1 data responses.
    DataResp,
    /// Atomic-operation requests.
    SyncReq,
    /// Atomic-operation responses.
    SyncResp,
    /// Coherence requests (invalidations, recalls).
    CohReq,
    /// Coherence responses (acks, forwarded data).
    CohResp,
    /// L2 → DRAM requests.
    DramReq,
    /// DRAM → L2 responses.
    DramResp,
    /// User-level interrupt messages (separate mesh).
    Uli,
}

/// All traffic classes, in display order.
pub const TRAFFIC_CLASSES: [TrafficClass; 10] = [
    TrafficClass::CpuReq,
    TrafficClass::WbReq,
    TrafficClass::DataResp,
    TrafficClass::SyncReq,
    TrafficClass::SyncResp,
    TrafficClass::CohReq,
    TrafficClass::CohResp,
    TrafficClass::DramReq,
    TrafficClass::DramResp,
    TrafficClass::Uli,
];

impl TrafficClass {
    /// Short lower-case label used in reports (matches the paper's legend).
    pub fn label(self) -> &'static str {
        match self {
            TrafficClass::CpuReq => "cpu_req",
            TrafficClass::WbReq => "wb_req",
            TrafficClass::DataResp => "data_resp",
            TrafficClass::SyncReq => "sync_req",
            TrafficClass::SyncResp => "sync_resp",
            TrafficClass::CohReq => "coh_req",
            TrafficClass::CohResp => "coh_resp",
            TrafficClass::DramReq => "dram_req",
            TrafficClass::DramResp => "dram_resp",
            TrafficClass::Uli => "uli",
        }
    }

    fn index(self) -> usize {
        match self {
            TrafficClass::CpuReq => 0,
            TrafficClass::WbReq => 1,
            TrafficClass::DataResp => 2,
            TrafficClass::SyncReq => 3,
            TrafficClass::SyncResp => 4,
            TrafficClass::CohReq => 5,
            TrafficClass::CohResp => 6,
            TrafficClass::DramReq => 7,
            TrafficClass::DramResp => 8,
            TrafficClass::Uli => 9,
        }
    }
}

impl fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Byte and message counts per [`TrafficClass`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct TrafficStats {
    bytes: [u64; 10],
    messages: [u64; 10],
    hop_cycles: u64,
}

impl TrafficStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one message of `class` carrying `bytes` total (header +
    /// payload) that traversed `hops` links.
    pub fn record(&mut self, class: TrafficClass, bytes: u64, hops: u32) {
        let i = class.index();
        self.bytes[i] += bytes;
        self.messages[i] += 1;
        self.hop_cycles += bytes.div_ceil(16).max(1) * hops as u64;
    }

    /// Total bytes recorded for `class`.
    pub fn bytes(&self, class: TrafficClass) -> u64 {
        self.bytes[class.index()]
    }

    /// Total messages recorded for `class`.
    pub fn messages(&self, class: TrafficClass) -> u64 {
        self.messages[class.index()]
    }

    /// Total bytes over the data OCN (everything except [`TrafficClass::Uli`]).
    pub fn total_data_bytes(&self) -> u64 {
        TRAFFIC_CLASSES.iter().filter(|c| **c != TrafficClass::Uli).map(|c| self.bytes(*c)).sum()
    }

    /// Total messages over the data OCN.
    pub fn total_data_messages(&self) -> u64 {
        TRAFFIC_CLASSES.iter().filter(|c| **c != TrafficClass::Uli).map(|c| self.messages(*c)).sum()
    }

    /// Flit-hops accumulated (a proxy for link utilization: one unit is one
    /// 16-byte flit crossing one link).
    pub fn hop_cycles(&self) -> u64 {
        self.hop_cycles
    }

    /// All `(label, bytes, messages)` triples in display order, including
    /// zero classes — the stable iteration surface the metrics exporter
    /// keys its schema on.
    pub fn by_class(&self) -> [(&'static str, u64, u64); 10] {
        TRAFFIC_CLASSES.map(|c| (c.label(), self.bytes(c), self.messages(c)))
    }

    /// Link utilization of the network given total `cycles` elapsed and
    /// `links` unidirectional links, in `[0, 1]` (may exceed 1 when the
    /// latency-only model over-commits; callers report it as-is).
    pub fn utilization(&self, cycles: u64, links: u64) -> f64 {
        if cycles == 0 || links == 0 {
            return 0.0;
        }
        self.hop_cycles as f64 / (cycles as f64 * links as f64)
    }
}

impl Add for TrafficStats {
    type Output = TrafficStats;

    fn add(mut self, rhs: TrafficStats) -> TrafficStats {
        self += rhs;
        self
    }
}

impl AddAssign for TrafficStats {
    fn add_assign(&mut self, rhs: TrafficStats) {
        for i in 0..self.bytes.len() {
            self.bytes[i] += rhs.bytes[i];
            self.messages[i] += rhs.messages[i];
        }
        self.hop_cycles += rhs.hop_cycles;
    }
}

impl fmt::Display for TrafficStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for class in TRAFFIC_CLASSES {
            let b = self.bytes(class);
            if b > 0 {
                writeln!(
                    f,
                    "{:>10}: {:>12} B {:>10} msgs",
                    class.label(),
                    b,
                    self.messages(class)
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_bytes_and_messages() {
        let mut s = TrafficStats::new();
        s.record(TrafficClass::CpuReq, 8, 4);
        s.record(TrafficClass::CpuReq, 8, 2);
        s.record(TrafficClass::DataResp, 72, 4);
        assert_eq!(s.bytes(TrafficClass::CpuReq), 16);
        assert_eq!(s.messages(TrafficClass::CpuReq), 2);
        assert_eq!(s.bytes(TrafficClass::DataResp), 72);
        assert_eq!(s.total_data_bytes(), 88);
        assert_eq!(s.total_data_messages(), 3);
    }

    #[test]
    fn uli_excluded_from_data_totals() {
        let mut s = TrafficStats::new();
        s.record(TrafficClass::Uli, 8, 10);
        assert_eq!(s.total_data_bytes(), 0);
        assert_eq!(s.bytes(TrafficClass::Uli), 8);
    }

    #[test]
    fn add_merges_componentwise() {
        let mut a = TrafficStats::new();
        a.record(TrafficClass::WbReq, 72, 3);
        let mut b = TrafficStats::new();
        b.record(TrafficClass::WbReq, 72, 5);
        b.record(TrafficClass::CohReq, 8, 1);
        let c = a + b;
        assert_eq!(c.bytes(TrafficClass::WbReq), 144);
        assert_eq!(c.messages(TrafficClass::WbReq), 2);
        assert_eq!(c.bytes(TrafficClass::CohReq), 8);
    }

    #[test]
    fn utilization_is_fractional() {
        let mut s = TrafficStats::new();
        // one 16-byte flit over 4 hops
        s.record(TrafficClass::CpuReq, 16, 4);
        let u = s.utilization(100, 10);
        assert!((u - 4.0 / 1000.0).abs() < 1e-12);
        assert_eq!(s.utilization(0, 10), 0.0);
    }

    #[test]
    fn labels_match_paper_legend() {
        assert_eq!(TrafficClass::CpuReq.label(), "cpu_req");
        assert_eq!(TrafficClass::DramResp.to_string(), "dram_resp");
    }

    #[test]
    fn by_class_is_schema_stable() {
        let mut s = TrafficStats::new();
        s.record(TrafficClass::WbReq, 72, 3);
        let rows = s.by_class();
        assert_eq!(rows.len(), TRAFFIC_CLASSES.len());
        assert_eq!(rows[0], ("cpu_req", 0, 0), "zero classes still listed");
        assert_eq!(rows[1], ("wb_req", 72, 1));
        assert_eq!(rows[9].0, "uli");
    }
}
