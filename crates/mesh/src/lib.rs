#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! On-chip network (OCN) model for the big.TINY simulator.
//!
//! This crate models the two mesh networks of the paper's simulated system
//! (ISCA 2020, "Efficiently Supporting Dynamic Task Parallelism on
//! Heterogeneous Cache-Coherent Systems"):
//!
//! * the **data OCN** — an 8×8 (or 8×32 for the 256-core system) mesh with
//!   XY dimension-ordered routing, 16-byte flits, 1-cycle channel latency and
//!   1-cycle router latency, carrying all memory-system messages between
//!   private L1 caches, the banked shared L2, and the DRAM controllers; and
//! * the **ULI network** — a dedicated mesh with two virtual channels (one
//!   for requests, one for responses) carrying single-word user-level
//!   interrupt messages for direct task stealing (DTS).
//!
//! The model is a latency + accounting model: every message is charged a
//! deterministic latency derived from hop count and serialization, and its
//! bytes are attributed to one of the traffic categories reported in
//! Figure 8 of the paper ([`TrafficClass`]).
//!
//! # Example
//!
//! ```
//! use bigtiny_mesh::{MeshConfig, Mesh, TrafficClass, Tile};
//!
//! let mut mesh = Mesh::new(MeshConfig::paper_64_core());
//! let a = Tile::new(0, 0);
//! let b = Tile::new(7, 7);
//! // A 64-byte data response travelling corner to corner.
//! let lat = mesh.send(a, b, TrafficClass::DataResp, 64);
//! assert!(lat > 0);
//! assert_eq!(mesh.stats().bytes(TrafficClass::DataResp), 64 + 8);
//! ```

mod coreset;
mod network;
mod rng;
mod topology;
mod traffic;

pub use coreset::CoreSet;
pub use network::{Mesh, MeshConfig, MeshFaults, UliCoreState, UliMessage, UliNetwork, UliOutcome};
pub use rng::XorShift64;
pub use topology::{Tile, Topology};
pub use traffic::{TrafficClass, TrafficStats, TRAFFIC_CLASSES};
