//! Mesh topology: tile coordinates and XY-routed hop distances.

use std::fmt;

/// A tile position in the 2-D mesh, addressed by `(x, y)` = (column, row).
///
/// The paper's 64-core system is an 8×8 mesh of core tiles with one shared-L2
/// bank and one DRAM controller attached per column; we place those "edge"
/// agents on a virtual row just below the core rows (see
/// [`Topology::l2_bank_tile`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Tile {
    x: u16,
    y: u16,
}

impl Tile {
    /// Creates a tile at column `x`, row `y`.
    pub fn new(x: u16, y: u16) -> Self {
        Tile { x, y }
    }

    /// Column (X coordinate).
    pub fn x(self) -> u16 {
        self.x
    }

    /// Row (Y coordinate).
    pub fn y(self) -> u16 {
        self.y
    }

    /// Manhattan (XY-routing) hop distance to `other`.
    pub fn hops_to(self, other: Tile) -> u32 {
        let dx = (self.x as i32 - other.x as i32).unsigned_abs();
        let dy = (self.y as i32 - other.y as i32).unsigned_abs();
        dx + dy
    }
}

impl fmt::Display for Tile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// Physical layout of cores, L2 banks, and DRAM controllers on the mesh.
///
/// Cores fill the mesh row-major: core `i` sits at
/// `(i % cols, i / cols)`. Each column hosts one L2 bank and one memory
/// controller on a virtual edge row at `y = rows` — this mirrors the paper's
/// Figure 1 where "each column of the mesh is connected to an L2 cache bank
/// and a DRAM controller".
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Topology {
    rows: u16,
    cols: u16,
}

impl Topology {
    /// Creates a mesh with `rows` rows and `cols` columns of core tiles.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    pub fn new(rows: u16, cols: u16) -> Self {
        assert!(rows > 0 && cols > 0, "mesh dimensions must be nonzero");
        Topology { rows, cols }
    }

    /// Number of core tiles (`rows * cols`).
    pub fn num_tiles(self) -> usize {
        self.rows as usize * self.cols as usize
    }

    /// Number of L2 banks / DRAM controllers (one per column).
    pub fn num_banks(self) -> usize {
        self.cols as usize
    }

    /// Mesh rows.
    pub fn rows(self) -> u16 {
        self.rows
    }

    /// Mesh columns.
    pub fn cols(self) -> u16 {
        self.cols
    }

    /// Tile of core `core_id` (row-major placement).
    ///
    /// # Panics
    ///
    /// Panics if `core_id >= self.num_tiles()`.
    pub fn core_tile(self, core_id: usize) -> Tile {
        assert!(core_id < self.num_tiles(), "core id {core_id} out of range");
        Tile::new((core_id % self.cols as usize) as u16, (core_id / self.cols as usize) as u16)
    }

    /// Tile of L2 bank `bank_id` (edge row below the cores).
    ///
    /// # Panics
    ///
    /// Panics if `bank_id >= self.num_banks()`.
    pub fn l2_bank_tile(self, bank_id: usize) -> Tile {
        assert!(bank_id < self.num_banks(), "bank id {bank_id} out of range");
        Tile::new(bank_id as u16, self.rows)
    }

    /// Tile of DRAM controller `mc_id`; co-located with its column's L2 bank.
    pub fn mem_ctrl_tile(self, mc_id: usize) -> Tile {
        self.l2_bank_tile(mc_id)
    }

    /// Partitions cores `0..num_cores` into execution islands, one per
    /// mesh quadrant: a core's island is decided by which half of the
    /// mesh (in each dimension) its tile sits in. Islands that end up
    /// empty (e.g. a 1-row mesh has no lower half) are dropped, so the
    /// result has 1, 2, or 4 non-empty islands whose union is exactly
    /// `0..num_cores`, each sorted ascending.
    ///
    /// This is the default sharding of the engine's parallel
    /// (`ShardedFibers`) backend: quadrants keep physically-close cores —
    /// the ones with the cheapest mesh round trips, and therefore the
    /// densest steal/communication traffic — on the same host thread.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` exceeds [`Topology::num_tiles`].
    pub fn quadrant_islands(self, num_cores: usize) -> Vec<Vec<usize>> {
        assert!(num_cores <= self.num_tiles(), "more cores than tiles");
        let half_rows = self.rows / 2;
        let half_cols = self.cols / 2;
        let mut islands: Vec<Vec<usize>> = vec![Vec::new(); 4];
        for core in 0..num_cores {
            let t = self.core_tile(core);
            let q = usize::from(t.y() >= half_rows && self.rows > 1) * 2
                + usize::from(t.x() >= half_cols && self.cols > 1);
            islands[q].push(core);
        }
        islands.retain(|i| !i.is_empty());
        islands
    }

    /// Minimum hop distance between cores of *different* islands: the
    /// conservative parallel-discrete-event lookahead bound of the sharded
    /// backend (no cross-island interaction can land earlier than this
    /// many hops of mesh latency). Returns 0 when fewer than two islands
    /// exist (no cross-island pairs).
    pub fn min_cross_island_hops(self, islands: &[Vec<usize>]) -> u32 {
        let mut min = u32::MAX;
        for (ai, a) in islands.iter().enumerate() {
            for b in islands.iter().skip(ai + 1) {
                for &ca in a {
                    for &cb in b {
                        min = min.min(self.core_tile(ca).hops_to(self.core_tile(cb)));
                    }
                }
            }
        }
        if min == u32::MAX {
            0
        } else {
            min
        }
    }

    /// Average hop distance between all pairs of core tiles (useful for
    /// sanity-checking latency parameters).
    pub fn mean_core_distance(self) -> f64 {
        let n = self.num_tiles();
        let mut total = 0u64;
        for a in 0..n {
            for b in 0..n {
                total += self.core_tile(a).hops_to(self.core_tile(b)) as u64;
            }
        }
        total as f64 / (n * n) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hop_distance_is_manhattan() {
        assert_eq!(Tile::new(0, 0).hops_to(Tile::new(7, 7)), 14);
        assert_eq!(Tile::new(3, 2).hops_to(Tile::new(3, 2)), 0);
        assert_eq!(Tile::new(5, 1).hops_to(Tile::new(2, 4)), 6);
    }

    #[test]
    fn hop_distance_is_symmetric() {
        let a = Tile::new(1, 6);
        let b = Tile::new(4, 0);
        assert_eq!(a.hops_to(b), b.hops_to(a));
    }

    #[test]
    fn core_placement_is_row_major() {
        let t = Topology::new(8, 8);
        assert_eq!(t.core_tile(0), Tile::new(0, 0));
        assert_eq!(t.core_tile(7), Tile::new(7, 0));
        assert_eq!(t.core_tile(8), Tile::new(0, 1));
        assert_eq!(t.core_tile(63), Tile::new(7, 7));
    }

    #[test]
    fn banks_live_on_edge_row() {
        let t = Topology::new(8, 8);
        assert_eq!(t.num_banks(), 8);
        assert_eq!(t.l2_bank_tile(0), Tile::new(0, 8));
        assert_eq!(t.l2_bank_tile(7), Tile::new(7, 8));
        assert_eq!(t.mem_ctrl_tile(3), t.l2_bank_tile(3));
    }

    #[test]
    fn big_mesh_dimensions() {
        let t = Topology::new(8, 32);
        assert_eq!(t.num_tiles(), 256);
        assert_eq!(t.num_banks(), 32);
        assert_eq!(t.core_tile(255), Tile::new(31, 7));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn core_tile_bounds_checked() {
        Topology::new(2, 2).core_tile(4);
    }

    #[test]
    fn mean_distance_is_positive_and_bounded() {
        let t = Topology::new(8, 8);
        let d = t.mean_core_distance();
        assert!(d > 4.0 && d < 6.0, "8x8 mean distance ~5.25, got {d}");
    }

    #[test]
    fn quadrant_islands_partition_all_cores() {
        let t = Topology::new(8, 8);
        let islands = t.quadrant_islands(64);
        assert_eq!(islands.len(), 4);
        let mut all: Vec<usize> = islands.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..64).collect::<Vec<_>>());
        for isl in &islands {
            assert_eq!(isl.len(), 16, "8x8 quadrants are 4x4");
            assert!(isl.windows(2).all(|w| w[0] < w[1]), "islands sorted");
        }
        // Core 0 (0,0) and core 63 (7,7) land in different quadrants.
        let of = |c: usize| islands.iter().position(|i| i.contains(&c)).unwrap();
        assert_ne!(of(0), of(63));
        assert_eq!(of(0), of(9), "(1,1) shares core 0's quadrant");
    }

    #[test]
    fn quadrant_islands_handle_partial_and_degenerate_meshes() {
        // Fewer cores than tiles: only occupied tiles partition.
        let t = Topology::new(8, 8);
        let islands = t.quadrant_islands(10);
        let all: Vec<usize> = islands.iter().flatten().copied().collect();
        assert_eq!(all.len(), 10);
        // A single-row mesh has only left/right halves.
        let row = Topology::new(1, 8);
        let islands = row.quadrant_islands(8);
        assert_eq!(islands.len(), 2);
        // A 1x1 mesh is one island.
        assert_eq!(Topology::new(1, 1).quadrant_islands(1).len(), 1);
    }

    #[test]
    fn min_cross_island_hops_is_adjacent_quadrant_border() {
        let t = Topology::new(8, 8);
        let islands = t.quadrant_islands(64);
        // Adjacent quadrants touch across one link: minimum is 1 hop.
        assert_eq!(t.min_cross_island_hops(&islands), 1);
        // One island: no cross pairs.
        assert_eq!(t.min_cross_island_hops(&[vec![0, 1, 2]]), 0);
        // Distant islands: (0,0) vs (7,7) is 14 hops from the far corner,
        // but the closest pair dominates.
        assert_eq!(t.min_cross_island_hops(&[vec![0], vec![63]]), 14);
    }
}
