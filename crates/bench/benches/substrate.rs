//! Criterion microbenchmarks of the simulator substrates: host-side cost of
//! the mesh model, L1/L2 protocol operations, and the deterministic RNG.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use bigtiny_coherence::{Addr, CoreMemConfig, MemConfig, MemorySystem, Protocol};
use bigtiny_engine::XorShift64;
use bigtiny_mesh::{Mesh, MeshConfig, Tile, TrafficClass};

fn bench_mesh(c: &mut Criterion) {
    let mut mesh = Mesh::new(MeshConfig::paper_64_core());
    c.bench_function("mesh/send_corner_to_corner", |b| {
        b.iter(|| {
            mesh.send(
                black_box(Tile::new(0, 0)),
                black_box(Tile::new(7, 7)),
                TrafficClass::DataResp,
                64,
            )
        })
    });
}

fn make_system(tiny_proto: Protocol) -> MemorySystem {
    let mesh = MeshConfig::paper_64_core();
    let mut cores = vec![CoreMemConfig::big(); 4];
    cores.extend(vec![CoreMemConfig::tiny(tiny_proto); 60]);
    MemorySystem::new(&MemConfig::paper(mesh, cores))
}

fn bench_memory_system(c: &mut Criterion) {
    for proto in [Protocol::Mesi, Protocol::DeNovo, Protocol::GpuWt, Protocol::GpuWb] {
        let mut m = make_system(proto);
        // Warm one line so the hit path is exercised.
        m.load(10, Addr(0x1000), 0);
        c.bench_function(&format!("mem/{}/load_hit", proto.label()), |b| {
            let mut t = 1000u64;
            b.iter(|| {
                t += 1;
                black_box(m.load(10, Addr(0x1000), t))
            })
        });
        let mut m2 = make_system(proto);
        c.bench_function(&format!("mem/{}/load_miss_stream", proto.label()), |b| {
            let mut a = 0u64;
            let mut t = 0u64;
            b.iter(|| {
                a += 64;
                t += 10;
                black_box(m2.load(10, Addr(0x100000 + a), t))
            })
        });
        let mut m3 = make_system(proto);
        c.bench_function(&format!("mem/{}/amo", proto.label()), |b| {
            let mut t = 0u64;
            b.iter(|| {
                t += 10;
                black_box(m3.amo(10, Addr(0x2000), t))
            })
        });
    }
}

fn bench_bulk_ops(c: &mut Criterion) {
    c.bench_function("mem/gwb/flush_64_dirty_lines", |b| {
        b.iter_batched(
            || {
                let mut m = make_system(Protocol::GpuWb);
                for i in 0..64 {
                    m.store(10, Addr(0x100000 + i * 64), i);
                }
                m
            },
            |mut m| black_box(m.flush_all(10, 10_000)),
            criterion::BatchSize::SmallInput,
        )
    });
    c.bench_function("mem/dnv/invalidate_full_cache", |b| {
        b.iter_batched(
            || {
                let mut m = make_system(Protocol::DeNovo);
                for i in 0..64 {
                    m.load(10, Addr(0x100000 + i * 64), i);
                }
                m
            },
            |mut m| black_box(m.invalidate_all(10, 10_000)),
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_rng(c: &mut Criterion) {
    let mut rng = XorShift64::new(42);
    c.bench_function("rng/next_below_63", |b| b.iter(|| black_box(rng.next_below(63))));
}

criterion_group!(benches, bench_mesh, bench_memory_system, bench_bulk_ops, bench_rng);
criterion_main!(benches);
