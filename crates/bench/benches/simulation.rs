//! End-to-end simulator throughput: wall-clock cost of complete simulated
//! runs (one per runtime variant) on a small system, and a single-kernel
//! run on the full 64-core machine.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use bigtiny_apps::{app_by_name, AppSize};
use bigtiny_bench::{run_app, Setup};
use bigtiny_core::{run_task_parallel, parallel_invoke, RuntimeConfig, RuntimeKind, TaskCx};
use bigtiny_engine::{AddrSpace, Protocol, ShVec, SystemConfig};
use bigtiny_mesh::{MeshConfig, Topology};
use std::sync::Arc;

fn fib(cx: &mut TaskCx<'_>, out: Arc<ShVec<u64>>, slot: usize, n: u64) {
    cx.port().advance(4);
    if n < 2 {
        out.write(cx.port(), slot, n);
        return;
    }
    let (a, b) = (Arc::clone(&out), Arc::clone(&out));
    let (sa, sb) = (2 * slot + 1, 2 * slot + 2);
    parallel_invoke(cx, move |cx| fib(cx, a, sa, n - 1), move |cx| fib(cx, b, sb, n - 2));
    let x = out.read(cx.port(), sa);
    let y = out.read(cx.port(), sb);
    out.write(cx.port(), slot, x + y);
}

fn bench_sim_fib(c: &mut Criterion) {
    for (name, kind, proto) in [
        ("baseline_mesi", RuntimeKind::Baseline, Protocol::Mesi),
        ("hcc_gwb", RuntimeKind::Hcc, Protocol::GpuWb),
        ("dts_gwb", RuntimeKind::Dts, Protocol::GpuWb),
    ] {
        c.bench_function(&format!("sim/fib12_8cores_{name}"), |b| {
            b.iter(|| {
                let sys = SystemConfig::big_tiny(
                    "bench8",
                    MeshConfig::with_topology(Topology::new(3, 3)),
                    1,
                    7,
                    proto,
                );
                let cfg = RuntimeConfig::new(kind);
                let mut space = AddrSpace::new();
                let out = Arc::new(ShVec::new(&mut space, 1 << 13, 0u64));
                let o = Arc::clone(&out);
                let run = run_task_parallel(&sys, &cfg, &mut space, move |cx| fib(cx, o, 0, 12));
                black_box(run.report.completion_cycles)
            })
        });
    }
}

fn bench_full_machine(c: &mut Criterion) {
    let app = app_by_name("ligra-bfs").expect("registered");
    c.bench_function("sim/ligra_bfs_test_64cores_dts_gwb", |b| {
        b.iter(|| {
            let setup = Setup::bt_hcc(Protocol::GpuWb, true);
            black_box(run_app(&setup, &app, AppSize::Test, 0).cycles)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sim_fib, bench_full_machine
}
criterion_main!(benches);
