//! Native-hardware validation of the baseline work-stealing runtime
//! (the analogue of the paper's Section V-B TBB/Cilk comparison): the
//! `NativePool` fork-join scheduler versus serial execution on the host.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use bigtiny_core::{native_fib, NativePool};

fn serial_fib(n: u64) -> u64 {
    if n < 2 {
        n
    } else {
        serial_fib(n - 1) + serial_fib(n - 2)
    }
}

fn bench_native(c: &mut Criterion) {
    let n = 20u64;
    c.bench_function("native/serial_fib20", |b| b.iter(|| black_box(serial_fib(black_box(n)))));

    for threads in [1usize, 2, 4] {
        let pool = NativePool::new(threads);
        c.bench_function(&format!("native/pool{threads}_fib20"), |b| {
            b.iter(|| black_box(native_fib(&pool, n)))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_native
}
criterion_main!(benches);
