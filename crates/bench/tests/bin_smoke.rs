//! Tier-1 smoke tests for every figure/table binary: each one runs on a
//! tiny input and must exit cleanly with a rendered table, and every
//! machine-readable artifact it writes must survive the strict parsers.
//! Before this suite, the `fig4`–`fig8`/`table1`–`table5` bins wrote
//! result files no tool validated, so bin rot only surfaced when someone
//! tried to regenerate a paper figure.

use std::path::PathBuf;
use std::process::Command;

use bigtiny_bench::parse_json_line;
use bigtiny_obs::{parse_json, validate_chrome_trace, METRICS_SCHEMA};

/// Runs a binary with the given env, asserting success; returns stdout.
fn run_bin(exe: &str, env: &[(&str, &str)], args: &[&str]) -> String {
    let out = Command::new(exe)
        .args(args)
        .envs(env.iter().copied())
        .output()
        .unwrap_or_else(|e| panic!("spawning {exe}: {e}"));
    assert!(
        out.status.success(),
        "{exe} {args:?} failed ({}):\n--- stdout ---\n{}\n--- stderr ---\n{}",
        out.status,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("stdout is UTF-8")
}

/// A fresh scratch path that does not survive the test on success.
fn scratch(name: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("bigtiny-bin-smoke-{}-{name}", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

/// The tiny-input environment for matrix-driven bins: Test size, one
/// kernel, so a full 7-setup matrix stays subsecond.
const TINY: &[(&str, &str)] = &[("BIGTINY_SIZE", "test"), ("BIGTINY_APPS", "cilk5-nq")];

/// A rendered table has a header row, a dashed rule, and data rows.
fn assert_renders_table(stdout: &str, bin: &str, marker: &str) {
    assert!(stdout.contains(marker), "{bin}: missing {marker:?} in output:\n{stdout}");
    assert!(
        stdout.lines().any(|l| l.chars().filter(|&c| c == '-').count() > 10),
        "{bin}: no table rule in output:\n{stdout}"
    );
    assert!(
        stdout.lines().any(|l| l.contains("cilk5-nq") || l.contains("ligra") || l.contains("MESI")),
        "{bin}: no data row in output:\n{stdout}"
    );
}

/// Matrix bins also write `BIGTINY_JSON` records; every line must satisfy
/// the strict flat parser.
fn assert_json_lines_valid(path: &PathBuf, bin: &str) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("{bin}: reading {}: {e}", path.display()));
    let mut records = 0usize;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let kv = parse_json_line(line)
            .unwrap_or_else(|e| panic!("{bin}: invalid BIGTINY_JSON line: {e}\n  {line}"));
        assert!(!kv.is_empty(), "{bin}: empty BIGTINY_JSON record");
        records += 1;
    }
    assert!(records > 0, "{bin}: BIGTINY_JSON wrote no records");
    let _ = std::fs::remove_file(path);
}

#[test]
fn table1_renders_protocol_classification() {
    let out = run_bin(env!("CARGO_BIN_EXE_table1"), &[], &[]);
    assert_renders_table(&out, "table1", "Table I");
}

#[test]
fn table2_renders_simulator_configuration() {
    let out = run_bin(env!("CARGO_BIN_EXE_table2"), &[], &[]);
    assert!(out.contains("Table II"), "missing title:\n{out}");
    assert!(out.contains("Tiny Core") && out.contains("Big Core"), "missing rows:\n{out}");
}

#[test]
fn fig4_renders_granularity_sweep() {
    // fig4 is fixed to ligra-tc; only the size knob applies.
    let out = run_bin(env!("CARGO_BIN_EXE_fig4"), &[("BIGTINY_SIZE", "test")], &[]);
    assert!(out.contains("Figure 4"), "missing title:\n{out}");
    assert!(out.contains("Task Granularity"), "missing header:\n{out}");
}

#[test]
fn fig5_renders_speedups_and_valid_json() {
    let json = scratch("fig5.jsonl");
    let mut env = TINY.to_vec();
    let json_s = json.to_str().unwrap().to_owned();
    env.push(("BIGTINY_JSON", &json_s));
    let out = run_bin(env!("CARGO_BIN_EXE_fig5"), &env, &[]);
    assert_renders_table(&out, "fig5", "Figure 5");
    assert!(out.contains("geomean"), "missing geomean row:\n{out}");
    assert_json_lines_valid(&json, "fig5");
}

#[test]
fn fig6_renders_hit_rates() {
    let out = run_bin(env!("CARGO_BIN_EXE_fig6"), TINY, &[]);
    assert_renders_table(&out, "fig6", "Figure 6");
    assert!(out.contains('%'), "hit rates should be percentages:\n{out}");
}

#[test]
fn fig7_renders_time_breakdowns() {
    let out = run_bin(env!("CARGO_BIN_EXE_fig7"), TINY, &[]);
    assert_renders_table(&out, "fig7", "Figure 7");
    assert!(out.contains("Flush"), "missing breakdown category:\n{out}");
}

#[test]
fn fig8_renders_traffic_and_valid_json() {
    let json = scratch("fig8.jsonl");
    let mut env = TINY.to_vec();
    let json_s = json.to_str().unwrap().to_owned();
    env.push(("BIGTINY_JSON", &json_s));
    let out = run_bin(env!("CARGO_BIN_EXE_fig8"), &env, &[]);
    assert_renders_table(&out, "fig8", "Figure 8");
    assert_json_lines_valid(&json, "fig8");
}

#[test]
fn table3_renders_serial_and_o3_comparison() {
    let out = run_bin(env!("CARGO_BIN_EXE_table3"), TINY, &[]);
    assert_renders_table(&out, "table3", "Table III");
}

#[test]
fn table4_renders_dts_reductions() {
    let out = run_bin(env!("CARGO_BIN_EXE_table4"), TINY, &[]);
    assert_renders_table(&out, "table4", "Table IV");
}

#[test]
fn table5_renders_256_core_results() {
    // table5 runs a fixed 5-kernel list on the 256-core setups; Test size
    // keeps it to a couple of seconds.
    let out = run_bin(env!("CARGO_BIN_EXE_table5"), &[("BIGTINY_SIZE", "test")], &[]);
    assert_renders_table(&out, "table5", "Table V");
}

#[test]
fn eval_all_emits_valid_metrics_and_trace_documents() {
    let metrics = scratch("eval-metrics.json");
    let trace = scratch("eval-trace.json");
    let out = run_bin(
        env!("CARGO_BIN_EXE_eval_all"),
        TINY,
        &["--metrics-out", metrics.to_str().unwrap(), "--trace-out", trace.to_str().unwrap()],
    );
    assert!(out.contains("Figure 5") && out.contains("Table IV"), "missing sections:\n{out}");

    let mdoc = parse_json(std::fs::read_to_string(&metrics).unwrap().trim_end())
        .expect("metrics document parses strictly");
    assert_eq!(mdoc.get("schema").and_then(|s| s.as_str()), Some(METRICS_SCHEMA));
    let runs = mdoc.get("runs").and_then(|r| r.as_arr()).expect("runs array");
    assert_eq!(runs.len(), 7, "one run per (app, setup): 1 app x 7 setups");
    for r in runs {
        for section in ["breakdown", "coherence", "mesh", "uli", "faults", "watchdog", "steals"] {
            assert!(
                r.get(section).is_some(),
                "run {}/{} missing section {section}",
                r.get("app").and_then(|v| v.as_str()).unwrap_or("?"),
                r.get("setup").and_then(|v| v.as_str()).unwrap_or("?"),
            );
        }
    }

    let tdoc = parse_json(std::fs::read_to_string(&trace).unwrap().trim_end())
        .expect("trace document parses strictly");
    let s = validate_chrome_trace(&tdoc).expect("trace validates structurally");
    assert!(s.complete > 0 && s.async_pairs > 0 && s.flows > 0, "trace is empty: {s:?}");

    let _ = std::fs::remove_file(&metrics);
    let _ = std::fs::remove_file(&trace);
}

#[test]
fn trace_smoke_passes_and_writes_artifacts() {
    let metrics = scratch("smoke-metrics.json");
    let trace = scratch("smoke-trace.json");
    let out = run_bin(
        env!("CARGO_BIN_EXE_trace_smoke"),
        &[],
        &["--metrics-out", metrics.to_str().unwrap(), "--trace-out", trace.to_str().unwrap()],
    );
    assert!(out.contains("[trace_smoke] OK"), "missing OK marker:\n{out}");
    assert!(out.contains("zero-overhead pin holds"), "missing pin line:\n{out}");
    assert!(metrics.exists() && trace.exists(), "artifacts not written");
    let _ = std::fs::remove_file(&metrics);
    let _ = std::fs::remove_file(&trace);
}

#[test]
fn profile_run_reports_and_writes_valid_v2_metrics() {
    let metrics = scratch("profile-metrics.json");
    let out = run_bin(
        env!("CARGO_BIN_EXE_profile_run"),
        &[("BIGTINY_SIZE", "test")],
        &["--app", "cilk5-nq", "--dts-only", "--out", metrics.to_str().unwrap()],
    );
    assert!(out.contains("[profile_run] OK"), "missing OK marker:\n{out}");
    assert_renders_table(&out, "profile_run", "Critical-path profile");
    assert!(out.contains("Cycle conservation"), "missing conservation table:\n{out}");
    assert!(out.contains("Burden on the critical path"), "missing burden section:\n{out}");

    let doc = parse_json(std::fs::read_to_string(&metrics).unwrap().trim_end())
        .expect("profile_run metrics parse strictly");
    assert_eq!(doc.get("schema").and_then(|s| s.as_str()), Some(METRICS_SCHEMA));
    for r in doc.get("runs").and_then(|r| r.as_arr()).expect("runs array") {
        let cp = r.get("critpath").expect("critpath section");
        assert_eq!(cp.get("profiled").map(|p| p.to_json()), Some("true".into()));
        assert!(cp.get("span").unwrap().as_num().unwrap() > 0.0, "zero span");
    }
    let _ = std::fs::remove_file(&metrics);
}

#[test]
fn metrics_diff_passes_identical_documents_and_gates_regressions() {
    let base = scratch("diff-base.json");
    let out =
        run_bin(env!("CARGO_BIN_EXE_eval_all"), TINY, &["--metrics-out", base.to_str().unwrap()]);
    assert!(out.contains("Figure 5"), "eval_all produced no output:\n{out}");

    // Identical documents diff clean at the strict default threshold.
    let same = run_bin(
        env!("CARGO_BIN_EXE_metrics_diff"),
        &[],
        &[base.to_str().unwrap(), base.to_str().unwrap()],
    );
    assert!(same.contains("[metrics_diff] OK"), "identical docs failed diff:\n{same}");
    assert!(same.contains("0.000%"), "identical docs show a nonzero delta:\n{same}");

    // A doctored cycle count must fail the gate (serializer is compact:
    // `"cycles":N`), and pass again once the threshold allows it.
    let text = std::fs::read_to_string(&base).unwrap();
    let (prefix, rest) = text.split_once("\"cycles\":").expect("cycles key present");
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    let old: u64 = digits.parse().expect("cycles is an integer");
    let doctored_path = scratch("diff-doctored.json");
    let doctored = format!("{prefix}\"cycles\":{}{}", old * 2, rest.strip_prefix(&digits).unwrap());
    std::fs::write(&doctored_path, doctored).unwrap();

    let gate = Command::new(env!("CARGO_BIN_EXE_metrics_diff"))
        .args([base.to_str().unwrap(), doctored_path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!gate.status.success(), "metrics_diff missed a 100% cycle regression");
    assert!(
        String::from_utf8_lossy(&gate.stderr).contains("exceeds threshold"),
        "wrong failure mode: {}",
        String::from_utf8_lossy(&gate.stderr)
    );
    let lax = run_bin(
        env!("CARGO_BIN_EXE_metrics_diff"),
        &[],
        &[base.to_str().unwrap(), doctored_path.to_str().unwrap(), "--threshold", "150"],
    );
    assert!(lax.contains("[metrics_diff] OK"), "generous threshold still failed:\n{lax}");

    let _ = std::fs::remove_file(&base);
    let _ = std::fs::remove_file(&doctored_path);
}

#[test]
fn ablate_faults_renders_every_plan_row() {
    let out = run_bin(env!("CARGO_BIN_EXE_ablate_faults"), TINY, &[]);
    assert_renders_table(&out, "ablate_faults", "Fault-plan ablation");
    for plan in ["none", "uli-drop-storm", "steal-miss-storm", "mesh-latency-spikes", "hostile"] {
        assert!(out.contains(plan), "ablate_faults: missing plan row {plan:?}:\n{out}");
    }
    assert!(out.contains("golden path"), "missing golden-path note:\n{out}");
}

#[test]
fn check_all_runs_clean_and_writes_strict_verdict_lines() {
    let verdicts = scratch("check-verdicts.json");
    let mut env = TINY.to_vec();
    let v_s = verdicts.to_str().unwrap().to_owned();
    env.push(("BIGTINY_CHECK_OUT", &v_s));
    let out = run_bin(env!("CARGO_BIN_EXE_check_all"), &env, &[]);
    assert!(out.contains("DRF conformance sweep"), "missing sweep title:\n{out}");
    assert!(out.contains("all 7 runs clean"), "sweep not clean:\n{out}");
    let text = std::fs::read_to_string(&verdicts).expect("verdict file written");
    let mut lines = 0usize;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let kv = parse_json_line(line)
            .unwrap_or_else(|e| panic!("check_all: invalid verdict line: {e}\n  {line}"));
        assert!(
            kv.iter().any(|(k, _)| k == "verdict_hash"),
            "check_all: verdict line missing hash: {line}"
        );
        lines += 1;
    }
    assert_eq!(lines, 7, "one verdict per (kernel x setup)");
    let _ = std::fs::remove_file(&verdicts);
}

/// Pin: the `--fault-plan` error must enumerate every named plan (the
/// crash plans included) so a typo shows the full valid vocabulary.
#[test]
fn eval_all_rejects_unknown_fault_plans_listing_every_name() {
    let out = Command::new(env!("CARGO_BIN_EXE_eval_all"))
        .args(["--fault-plan", "bogus-plan"])
        .envs(TINY.iter().copied())
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown plan `bogus-plan`"), "wrong error:\n{stderr}");
    for name in bigtiny_engine::FaultPlan::NAMES {
        assert!(stderr.contains(name), "error does not list plan {name:?}:\n{stderr}");
    }
    assert!(stderr.contains("key=value"), "error does not mention spec form:\n{stderr}");
}

/// `--fault-plan` also accepts the `key=value` spec form the chaos fuzzer
/// prints, arming the crash audit when the spec has a crash dimension.
#[test]
fn eval_all_accepts_fuzzer_specs_and_audits_crash_runs() {
    let out = run_bin(
        env!("CARGO_BIN_EXE_eval_all"),
        TINY,
        &["--fault-plan", "crash_cores=0x20,crash_at=1500", "--fault-seed", "3"],
    );
    assert!(out.contains("crash dimension armed"), "crash arming not announced:\n{out}");
    assert!(out.contains("Fault injection summary"), "missing fault summary:\n{out}");
    assert!(out.contains("Crash-recovery audit"), "missing audit table:\n{out}");
    assert!(out.contains("all 7 crash-armed runs audited clean"), "audit not clean:\n{out}");
}

#[test]
fn chaos_fuzz_survives_a_tiny_budget() {
    let out = run_bin(env!("CARGO_BIN_EXE_chaos_fuzz"), TINY, &["--budget", "2", "--seed", "1"]);
    assert!(
        out.contains("all 2 sampled plans survived"),
        "chaos_fuzz did not complete its budget:\n{out}"
    );
}

#[test]
fn json_check_accepts_nested_documents_and_rejects_garbage() {
    let good = scratch("check-good.json");
    std::fs::write(&good, "{\"schema\":\"x\",\"runs\":[{\"app\":\"a\"}]}\n").unwrap();
    let out = run_bin(env!("CARGO_BIN_EXE_json_check"), &[], &[good.to_str().unwrap()]);
    assert!(out.contains("1 runs"), "nested document not recognized:\n{out}");
    let _ = std::fs::remove_file(&good);

    let bad = scratch("check-bad.json");
    std::fs::write(&bad, "{\"schema\":\"x\",\"runs\":[}\n").unwrap();
    let status =
        Command::new(env!("CARGO_BIN_EXE_json_check")).arg(bad.to_str().unwrap()).output().unwrap();
    assert!(!status.status.success(), "json_check accepted a malformed document");
    let _ = std::fs::remove_file(&bad);

    // A metrics document claiming a schema version no reader understands
    // must be rejected, not silently passed through to CI artifacts.
    let drift = scratch("check-drift.json");
    std::fs::write(&drift, "{\"schema\":\"bigtiny-obs-metrics-v9\",\"runs\":[{\"app\":\"a\"}]}\n")
        .unwrap();
    let status = Command::new(env!("CARGO_BIN_EXE_json_check"))
        .arg(drift.to_str().unwrap())
        .output()
        .unwrap();
    assert!(!status.status.success(), "json_check accepted an unknown metrics schema");
    assert!(
        String::from_utf8_lossy(&status.stderr).contains("unknown metrics schema"),
        "wrong failure mode: {}",
        String::from_utf8_lossy(&status.stderr)
    );
    let _ = std::fs::remove_file(&drift);
}
