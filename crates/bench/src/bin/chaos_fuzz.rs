//! `chaos_fuzz`: sample random fault plans, check the self-healing
//! invariants under each, and shrink any failure to a minimal reproducer.
//!
//! Each sampled plan runs the kernel list (restricted by `BIGTINY_APPS`,
//! sized by `BIGTINY_SIZE`) on the 16-core DTS fault-ablation machine with
//! the watchdog armed and task events recorded. A plan fails if any run
//! panics (verification, stale reads, watchdog abort) or its task-event
//! audit is not clean. On failure the plan is shrunk — whole dimensions
//! dropped, crash-core mask bit-shrunk, magnitudes binary-searched — and
//! the minimal plan prints as an `eval_all --fault-plan <spec>` command.
//!
//! Usage:
//!
//! ```text
//! BIGTINY_SIZE=test cargo run --release --bin chaos_fuzz -- --budget 25 --seed 1
//! ```
//!
//! Exit status: 0 when every sampled plan survives, 1 on a reproduced
//! failure, 2 on usage errors.

use bigtiny_bench::fuzz::{check_app, check_plan_with, plan_dimensions, sample_plan, shrink_plan};
use bigtiny_bench::live::{dump_on_panic, HeartbeatWriter, DEFAULT_HEARTBEAT_EVERY};
use bigtiny_bench::{apps_from_env, size_from_env};
use bigtiny_engine::{FaultPlan, XorShift64};

const USAGE: &str = "usage: chaos_fuzz [--budget N] [--seed S] [--heartbeat-out PATH]
                  [--blackbox-out PATH]
  --budget N   number of fault plans to sample and check (default 25)
  --seed S     seed of the plan-sampling stream (default 1)
  --heartbeat-out PATH
               stream live telemetry from every probe run (one
               bigtiny-obs-heartbeat-v1 line per beat)
  --blackbox-out PATH
               on a failing plan whose probe aborted (watchdog trip or
               poison), dump the crash-time flight-recorder bundle here
kernel list and input size come from BIGTINY_APPS / BIGTINY_SIZE";

fn main() {
    let mut budget = 25usize;
    let mut seed = 1u64;
    let mut heartbeat_out: Option<String> = None;
    let mut blackbox_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value\n{USAGE}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--budget" => {
                let v = value("--budget");
                budget = v.parse().unwrap_or_else(|_| {
                    eprintln!("--budget: `{v}` is not a usize\n{USAGE}");
                    std::process::exit(2);
                });
            }
            "--seed" => {
                let v = value("--seed");
                seed = v.parse().unwrap_or_else(|_| {
                    eprintln!("--seed: `{v}` is not a u64\n{USAGE}");
                    std::process::exit(2);
                });
            }
            "--heartbeat-out" => heartbeat_out = Some(value("--heartbeat-out")),
            "--blackbox-out" => blackbox_out = Some(value("--blackbox-out")),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                std::process::exit(2);
            }
        }
    }

    let heartbeat = heartbeat_out.as_ref().map(|path| {
        HeartbeatWriter::create(path, DEFAULT_HEARTBEAT_EVERY)
            .unwrap_or_else(|e| panic!("--heartbeat-out {path}: {e}"))
    });
    let size = size_from_env();
    let apps = apps_from_env();
    let mut rng = XorShift64::new(seed);
    println!(
        "[chaos] fuzzing {budget} plans (seed {seed:#x}) over {} kernel(s) at {size:?}",
        apps.len()
    );

    for i in 1..=budget {
        let plan = sample_plan(&mut rng);
        let t0 = std::time::Instant::now();
        // Probing intentionally panics on broken runs; keep the default
        // hook's backtrace chatter off the fuzzing log.
        let failed = quiet(|| {
            check_plan_with(&plan, &apps, size, &mut |s, app| {
                if let Some(w) = &heartbeat {
                    w.arm(s, app);
                }
            })
        });
        match failed {
            None => {
                println!(
                    "[chaos] {i:>3}/{budget} ok    {:<60} ({:.1}s)",
                    plan.to_spec(),
                    t0.elapsed().as_secs_f64()
                );
            }
            Some(failure) => {
                println!("[chaos] {i:>3}/{budget} FAIL  {}", plan.to_spec());
                println!("[chaos] {}: {}", failure.app, failure.message);
                // A panicking probe (watchdog trip / poison) left the
                // engine a crash-time bundle; audit-only failures did not.
                if let Some(path) = &blackbox_out {
                    if !dump_on_panic(path) {
                        eprintln!("[blackbox] failure recorded no bundle (audit-only)");
                    }
                }
                let app = bigtiny_apps::app_by_name(failure.app).expect("failing app exists");
                println!("[chaos] shrinking against {}...", failure.app);
                let mut fails = |p: &FaultPlan| quiet(|| check_app(p, &app, size)).is_some();
                let min = shrink_plan(&plan, &mut fails);
                println!(
                    "[chaos] minimal reproducer ({} dimension(s)): {}",
                    plan_dimensions(&min),
                    min.to_spec()
                );
                println!(
                    "[chaos]   BIGTINY_SIZE={size_env} BIGTINY_APPS={app} cargo run --release \
                     --bin eval_all -- --fault-plan '{spec}' --fault-seed {fseed}",
                    size_env = format!("{size:?}").to_lowercase(),
                    app = failure.app,
                    spec = min.to_spec(),
                    fseed = min.seed,
                );
                std::process::exit(1);
            }
        }
    }
    println!("[chaos] all {budget} sampled plans survived: every run verified, audited clean");
}

/// Runs `f` with the panic hook silenced (probe panics are expected and
/// caught; their default-hook output would drown the fuzzing log).
fn quiet<T>(f: impl FnOnce() -> T) -> T {
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(hook);
    out
}
