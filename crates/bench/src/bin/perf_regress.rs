//! Engine perf-regression harness.
//!
//! Runs a pinned kernel subset across the four coherence protocols and
//! reports *host* wall-seconds and sequenced-ops/sec alongside the
//! simulated-cycle counts and the sequenced-op-stream hash. The point is
//! to track the engine's own speed over time: simulated results must stay
//! bit-for-bit identical (the hash pins that; see
//! `tests/tests/golden_trace.rs`), while wall time should only go down.
//!
//! Writes `BENCH_engine.json` at the repo root (or `$BIGTINY_BENCH_OUT`),
//! one JSON object for the whole run with a per-(kernel × setup) array.
//!
//! Usage:
//!
//! ```text
//! cargo run --release --bin perf_regress            # eval inputs (default)
//! BIGTINY_SIZE=test cargo run --release --bin perf_regress   # CI smoke
//! ```

use bigtiny_apps::app_by_name;
use bigtiny_bench::{geomean, render_table, run_app, size_from_env, Setup};
use bigtiny_core::RuntimeKind;
use bigtiny_engine::{ExecBackend, Protocol};
use std::time::Instant;

/// The pinned kernel subset: one divide-and-conquer kernel, one
/// dense-compute kernel, one irregular graph kernel. Changing this list
/// invalidates cross-PR comparisons, so don't.
const PINNED_APPS: [&str; 3] = ["cilk5-nq", "cilk5-mm", "ligra-bfs"];

/// The four protocols, each in its paper-native runtime pairing: MESI with
/// the baseline work-stealing runtime, the three HCC protocols with DTS.
fn pinned_setups() -> Vec<Setup> {
    vec![
        Setup::bt_mesi(),
        Setup::bt_hcc(Protocol::DeNovo, true),
        Setup::bt_hcc(Protocol::GpuWt, true),
        Setup::bt_hcc(Protocol::GpuWb, true),
    ]
}

struct PerfRow {
    app: &'static str,
    setup: String,
    cycles: u64,
    seq_grants: u64,
    seq_fast_grants: u64,
    seq_op_hash: u64,
    wall_s: f64,
    ops_per_sec: f64,
}

fn main() {
    let size = size_from_env();
    let setups = pinned_setups();
    // Zero-overhead guard: timed runs must never carry an armed checker —
    // event recording would perturb wall time and allocation behaviour,
    // and an armed run is not comparable with the historical series.
    for setup in &setups {
        assert_eq!(
            setup.sys.check,
            bigtiny_engine::CheckMode::Off,
            "{}: perf_regress setups must run with the checker off",
            setup.label
        );
    }
    let mut rows: Vec<PerfRow> = Vec::new();

    let t_total = Instant::now();
    for name in PINNED_APPS {
        let app = app_by_name(name).unwrap_or_else(|| panic!("unknown pinned kernel {name}"));
        for setup in &setups {
            let t0 = Instant::now();
            let r = run_app(setup, &app, size, 0);
            let wall_s = t0.elapsed().as_secs_f64();
            let grants = r.run.report.seq_grants;
            rows.push(PerfRow {
                app: r.app,
                setup: r.setup.clone(),
                cycles: r.cycles,
                seq_grants: grants,
                seq_fast_grants: r.run.report.seq_fast_grants,
                seq_op_hash: r.run.report.seq_op_hash,
                wall_s,
                ops_per_sec: grants as f64 / wall_s.max(1e-9),
            });
            eprintln!(
                "[perf] {:<10} {:<16} {:>11} grants ({:>4.1}% fast)  {:>6.2}s  {:>10.0} ops/s",
                name,
                setup.label,
                grants,
                100.0 * r.run.report.seq_fast_grants as f64 / grants.max(1) as f64,
                wall_s,
                grants as f64 / wall_s.max(1e-9)
            );
        }
    }
    // One sharded-fiber row on the 256-core machine that backend exists
    // for. Arch-gated (the fiber runtimes are x86_64-linux only); its op
    // hash must equal a Threads run of the same setup, so the row tracks
    // both the sharded backend's speed and its determinism over time.
    if cfg!(all(target_os = "linux", target_arch = "x86_64")) {
        let app = app_by_name("ligra-bfs").unwrap();
        let mut setup = Setup::bt_256(Protocol::GpuWb, RuntimeKind::Dts);
        setup.label.push_str("+sharded");
        setup.sys = setup.sys.clone().with_backend(ExecBackend::ShardedFibers);
        let t0 = Instant::now();
        let r = run_app(&setup, &app, size, 0);
        let wall_s = t0.elapsed().as_secs_f64();
        let grants = r.run.report.seq_grants;
        rows.push(PerfRow {
            app: r.app,
            setup: r.setup.clone(),
            cycles: r.cycles,
            seq_grants: grants,
            seq_fast_grants: r.run.report.seq_fast_grants,
            seq_op_hash: r.run.report.seq_op_hash,
            wall_s,
            ops_per_sec: grants as f64 / wall_s.max(1e-9),
        });
        eprintln!(
            "[perf] {:<10} {:<16} {:>11} grants ({:>4.1}% fast)  {:>6.2}s  {:>10.0} ops/s",
            r.app,
            setup.label,
            grants,
            100.0 * r.run.report.seq_fast_grants as f64 / grants.max(1) as f64,
            wall_s,
            grants as f64 / wall_s.max(1e-9)
        );
    }
    // One recorder-off row: the pinned rows above all run with the
    // default flight ring armed (it is always-on), so re-running one of
    // them with the ring at capacity 0 prices the recorder itself. Its op
    // hash must match the armed run of the same cell — the recorder is
    // observation-only — so the row tracks both overhead and invariance.
    {
        let app = app_by_name("cilk5-nq").unwrap();
        let mut setup = Setup::bt_hcc(Protocol::GpuWb, true);
        let armed_hash = rows
            .iter()
            .find(|r| r.app == "cilk5-nq" && r.setup == setup.label)
            .map(|r| r.seq_op_hash);
        setup.label.push_str("+flight-off");
        setup.sys = setup.sys.clone().with_flight_ring(0);
        let t0 = Instant::now();
        let r = run_app(&setup, &app, size, 0);
        let wall_s = t0.elapsed().as_secs_f64();
        let grants = r.run.report.seq_grants;
        if let Some(h) = armed_hash {
            assert_eq!(
                h, r.run.report.seq_op_hash,
                "flight recorder perturbed the op stream (armed vs ring-off hash mismatch)"
            );
        }
        rows.push(PerfRow {
            app: r.app,
            setup: r.setup.clone(),
            cycles: r.cycles,
            seq_grants: grants,
            seq_fast_grants: r.run.report.seq_fast_grants,
            seq_op_hash: r.run.report.seq_op_hash,
            wall_s,
            ops_per_sec: grants as f64 / wall_s.max(1e-9),
        });
        eprintln!(
            "[perf] {:<10} {:<16} {:>11} grants ({:>4.1}% fast)  {:>6.2}s  {:>10.0} ops/s",
            r.app,
            setup.label,
            grants,
            100.0 * r.run.report.seq_fast_grants as f64 / grants.max(1) as f64,
            wall_s,
            grants as f64 / wall_s.max(1e-9)
        );
    }
    let total_wall = t_total.elapsed().as_secs_f64();

    let header: Vec<String> = ["app", "setup", "sim cycles", "seq ops", "wall s", "ops/s"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.app.to_owned(),
                r.setup.clone(),
                r.cycles.to_string(),
                r.seq_grants.to_string(),
                format!("{:.3}", r.wall_s),
                format!("{:.0}", r.ops_per_sec),
            ]
        })
        .collect();
    println!("Engine perf regression ({} runs)", rows.len());
    println!("{}", render_table(&header, &table));

    let total_ops: u64 = rows.iter().map(|r| r.seq_grants).sum();
    let agg_ops_per_sec = total_ops as f64 / total_wall.max(1e-9);
    let geo_ops_per_sec = geomean(rows.iter().map(|r| r.ops_per_sec));
    println!(
        "total:   {total_ops} sequenced ops in {total_wall:.2}s  ({agg_ops_per_sec:.0} ops/s)"
    );
    println!("geomean: {geo_ops_per_sec:.0} ops/s across runs");

    let out_path =
        std::env::var("BIGTINY_BENCH_OUT").unwrap_or_else(|_| "BENCH_engine.json".to_owned());
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"bench\": \"engine\",\n  \"size\": \"{}\",\n", size_label(size)));
    json.push_str(&format!(
        "  \"total_seq_ops\": {total_ops},\n  \"total_wall_s\": {total_wall:.6},\n"
    ));
    json.push_str(&format!(
        "  \"agg_ops_per_sec\": {agg_ops_per_sec:.1},\n  \"geomean_ops_per_sec\": {geo_ops_per_sec:.1},\n"
    ));
    json.push_str("  \"runs\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            concat!(
                "    {{\"app\":\"{}\",\"setup\":\"{}\",\"cycles\":{},\"seq_grants\":{},",
                "\"seq_fast_grants\":{},",
                "\"seq_op_hash\":\"{:#018x}\",\"wall_s\":{:.6},\"ops_per_sec\":{:.1}}}{}\n"
            ),
            r.app,
            r.setup,
            r.cycles,
            r.seq_grants,
            r.seq_fast_grants,
            r.seq_op_hash,
            r.wall_s,
            r.ops_per_sec,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    eprintln!("[perf] wrote {out_path}");
}

fn size_label(size: bigtiny_apps::AppSize) -> &'static str {
    match size {
        bigtiny_apps::AppSize::Test => "test",
        bigtiny_apps::AppSize::Eval => "eval",
        bigtiny_apps::AppSize::Large => "large",
    }
}
