//! Table IV: reduction in cache-line invalidations and flushes, and the
//! resulting L1 hit-rate increase, of DTS relative to the HCC runtime.

use bigtiny_bench::{apps_from_env, find_result, render_table, run_matrix, size_from_env, Setup};
use bigtiny_engine::Protocol;

fn main() {
    let size = size_from_env();
    let apps = apps_from_env();
    let setups = Setup::big_tiny_matrix();
    let results = run_matrix(&setups, &apps, size);

    let header: Vec<String> = [
        "App",
        "InvDec dnv",
        "InvDec gwt",
        "InvDec gwb",
        "FlsDec gwb",
        "HitInc dnv",
        "HitInc gwt",
        "HitInc gwb",
    ]
    .map(String::from)
    .to_vec();

    let pct_dec = |hcc: u64, dts: u64| -> String {
        if hcc == 0 {
            "--".to_owned()
        } else {
            format!("{:.2}%", 100.0 * (hcc.saturating_sub(dts)) as f64 / hcc as f64)
        }
    };

    let mut rows = Vec::new();
    for app in &apps {
        let mut row = vec![app.name.to_owned()];
        let mut hit_inc = Vec::new();
        let mut fls_dec = String::new();
        for proto in [Protocol::DeNovo, Protocol::GpuWt, Protocol::GpuWb] {
            let hcc = find_result(&results, app.name, &format!("b.T/HCC-{}", proto.label()));
            let dts = find_result(&results, app.name, &format!("b.T/HCC-DTS-{}", proto.label()));
            let (mh, md) = (hcc.tiny_mem(), dts.tiny_mem());
            row.push(pct_dec(mh.lines_invalidated, md.lines_invalidated));
            if proto == Protocol::GpuWb {
                fls_dec = pct_dec(mh.lines_flushed, md.lines_flushed);
            }
            hit_inc.push(format!("{:.2}%", 100.0 * (dts.l1d_hit_rate() - hcc.l1d_hit_rate())));
        }
        row.push(fls_dec);
        row.extend(hit_inc);
        rows.push(row);
    }
    println!("Table IV: DTS vs HCC — invalidation/flush reduction and L1D hit-rate increase ({size:?} inputs)\n");
    println!("{}", render_table(&header, &rows));
    println!("Expected shape: >90% reductions for most kernels; smaller for steal-heavy ones (bf, bfsbv, tc).");
}
