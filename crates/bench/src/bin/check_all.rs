//! `check_all`: runs every kernel under every setup of the paper matrix
//! with the DRF conformance checker armed, and emits a JSON verdict table.
//!
//! This is the oracle sweep: MESI baseline plus HCC / HCC-DTS on the
//! three software-centric protocols, each kernel verified against its
//! host reference *and* its op stream replayed through the checker's
//! happens-before, staleness, and sync-discipline passes. A healthy tree
//! produces an all-clean table; any violation prints its first finding
//! (core, cycle, address) and the run exits nonzero.
//!
//! Writes one flat JSON object per (kernel × setup) line to
//! `CHECK_verdicts.json` at the repo root (or `$BIGTINY_CHECK_OUT`) —
//! validated in CI with the `json_check` bin. `BIGTINY_SIZE` /
//! `BIGTINY_APPS` restrict the sweep as for the other harness bins.
//!
//! Usage:
//!
//! ```text
//! cargo run --release --bin check_all                 # full eval sweep
//! BIGTINY_SIZE=test cargo run --release --bin check_all   # CI smoke
//! cargo run --release --bin check_all -- --fail-fast  # stop at first dirty cell
//! ```
//!
//! `--fail-fast` exits right after the first violating cell (the JSON
//! written so far is still flushed), so a dirty sweep fails in seconds
//! instead of minutes; the per-cell `wall ms` column makes slow cells
//! visible either way.
//!
//! `--heartbeat-out PATH` streams live `bigtiny-obs-heartbeat-v1` lines
//! for every cell; `--blackbox-out PATH` dumps the flight-recorder tails
//! of the first *dirty* cell (reason `drf_violation`) alongside a
//! Perfetto tail trace at `PATH.trace.json`.

use bigtiny_bench::live::{write_blackbox, HeartbeatWriter, DEFAULT_HEARTBEAT_EVERY};
use bigtiny_bench::{apps_from_env, render_table, run_app, size_from_env, Setup};
use bigtiny_checker::{check_run, CheckReport, ViolationKind};
use bigtiny_engine::{backend_label, CheckMode, RacyTag};
use bigtiny_obs::blackbox_from_report;

const USAGE: &str = "usage: check_all [--fail-fast] [--heartbeat-out PATH] [--blackbox-out PATH]
  --fail-fast          stop at the first dirty cell
  --heartbeat-out PATH stream live telemetry (bigtiny-obs-heartbeat-v1 lines)
  --blackbox-out PATH  dump the first dirty cell's flight-recorder tails
sizes and app selection come from BIGTINY_SIZE / BIGTINY_APPS";

fn json_line(app: &str, setup: &str, report: &CheckReport, wall_ms: u128) -> String {
    let mut s = String::from("{");
    s.push_str(&format!("\"app\":\"{app}\",\"setup\":\"{setup}\""));
    s.push_str(&format!(",\"wall_ms\":{wall_ms}"));
    s.push_str(&format!(",\"events\":{}", report.events));
    s.push_str(&format!(",\"clean\":{}", u8::from(report.is_clean())));
    s.push_str(&format!(",\"violations\":{}", report.violations.len()));
    s.push_str(&format!(",\"suppressed\":{}", report.suppressed));
    for kind in ViolationKind::ALL {
        s.push_str(&format!(",\"{}\":{}", kind.label(), report.count(kind)));
    }
    for (tag, n) in RacyTag::ALL.iter().zip(report.racy_loads) {
        s.push_str(&format!(",\"racy-{}\":{n}", tag.label()));
    }
    s.push_str(&format!(",\"verdict_hash\":\"{:#018x}\"", report.verdict_hash()));
    s.push('}');
    s
}

fn main() {
    let mut fail_fast = false;
    let mut heartbeat_out: Option<String> = None;
    let mut blackbox_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value\n{USAGE}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--fail-fast" => fail_fast = true,
            "--heartbeat-out" => heartbeat_out = Some(value("--heartbeat-out")),
            "--blackbox-out" => blackbox_out = Some(value("--blackbox-out")),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    let heartbeat = heartbeat_out.as_ref().map(|path| {
        HeartbeatWriter::create(path, DEFAULT_HEARTBEAT_EVERY)
            .unwrap_or_else(|e| panic!("--heartbeat-out {path}: {e}"))
    });
    let size = size_from_env();
    let apps = apps_from_env();
    let setups: Vec<Setup> = Setup::big_tiny_matrix()
        .into_iter()
        .map(|mut s| {
            s.sys = s.sys.with_check(CheckMode::Full);
            s
        })
        .collect();

    let header: Vec<String> =
        ["app", "setup", "events", "racy loads", "wall ms", "verdict"].map(String::from).to_vec();
    let mut rows = Vec::new();
    let mut lines = Vec::new();
    let mut dirty = 0usize;

    'sweep: for app in &apps {
        for base in &setups {
            let mut armed = base.clone();
            if let Some(w) = &heartbeat {
                w.arm(&mut armed, app.name);
            }
            let setup = &armed;
            let t0 = std::time::Instant::now();
            let r = run_app(setup, app, size, 0);
            let report = check_run(&setup.sys, &r.run.report);
            let wall_ms = t0.elapsed().as_millis();
            eprintln!(
                "[check_all] {:<12} {:<16} {:>9} events  {}",
                r.app,
                setup.label,
                report.events,
                if report.is_clean() { "clean" } else { "VIOLATIONS" }
            );
            if !report.is_clean() {
                dirty += 1;
                eprint!("{}", report.render());
                // First dirty cell: dump its flight tails for forensics.
                if let Some(path) = blackbox_out.take() {
                    let doc = blackbox_from_report(
                        "drf_violation",
                        backend_label(&setup.sys),
                        &setup.sys.faults.to_spec(),
                        &r.run.report,
                    );
                    write_blackbox(&path, &doc);
                }
            }
            rows.push(vec![
                r.app.to_owned(),
                setup.label.clone(),
                report.events.to_string(),
                report.racy_total().to_string(),
                wall_ms.to_string(),
                if report.is_clean() {
                    "clean".to_owned()
                } else {
                    format!("{} violation(s)", report.violations.len())
                },
            ]);
            lines.push(json_line(r.app, &setup.label, &report, wall_ms));
            if dirty > 0 && fail_fast {
                eprintln!("[check_all] --fail-fast: stopping after first dirty cell");
                break 'sweep;
            }
        }
    }

    println!("DRF conformance sweep ({} kernels x {} setups)\n", apps.len(), setups.len());
    println!("{}", render_table(&header, &rows));

    let out_path =
        std::env::var("BIGTINY_CHECK_OUT").unwrap_or_else(|_| "CHECK_verdicts.json".to_owned());
    let body = lines.join("\n") + "\n";
    std::fs::write(&out_path, body).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    eprintln!("[check_all] wrote {out_path}");

    if dirty > 0 {
        eprintln!("[check_all] {dirty} run(s) had violations");
        std::process::exit(1);
    }
    println!("all {} runs clean", rows.len());
}
