//! Table I: classification of the four cache-coherence protocols, printed
//! from the implementation's own `ProtocolTraits` so that the table and the
//! simulator can never drift apart.

use bigtiny_bench::render_table;
use bigtiny_coherence::{DirtyPropagation, Protocol, StaleInvalidation, WriteGranularity};

fn main() {
    let header: Vec<String> = [
        "Protocol",
        "Who initiates invalidation?",
        "How is dirty data propagated?",
        "Write granularity",
    ]
    .map(String::from)
    .to_vec();
    let rows: Vec<Vec<String>> = Protocol::ALL
        .iter()
        .map(|p| {
            let t = p.traits();
            vec![
                p.to_string(),
                match t.stale_invalidation {
                    StaleInvalidation::Writer => "Writer".to_owned(),
                    StaleInvalidation::Reader => "Reader".to_owned(),
                },
                match t.dirty_propagation {
                    DirtyPropagation::OwnerWriteBack => "Owner, Write-Back".to_owned(),
                    DirtyPropagation::NoOwnerWriteThrough => "No-Owner, Write-Through".to_owned(),
                    DirtyPropagation::NoOwnerWriteBack => "No-Owner, Write-Back".to_owned(),
                },
                match t.write_granularity {
                    WriteGranularity::Line => "Line".to_owned(),
                    WriteGranularity::WordOrLine => "Word/Line".to_owned(),
                    WriteGranularity::Word => "Word".to_owned(),
                },
            ]
        })
        .collect();
    println!("Table I: Classification of Cache Coherence Protocols\n");
    println!("{}", render_table(&header, &rows));
    println!("Runtime no-op table (Figure 3 caption):");
    for p in Protocol::ALL {
        println!(
            "  {:<8} cache_invalidate: {:<6} cache_flush: {}",
            p.to_string(),
            if p.invalidate_is_noop() { "no-op" } else { "real" },
            if p.flush_is_noop() { "no-op" } else { "real" },
        );
    }
}
