//! `tail_run`: follow a heartbeat stream with a refreshing terminal
//! dashboard.
//!
//! Point it at the file a `--heartbeat-out` run is writing and watch the
//! run live: per-core state strip, simulated-cycle progress, a throughput
//! sparkline over the recent grants/s samples, conservation buckets, and
//! a fault/recovery ticker. The stream is line-JSON
//! (`bigtiny-obs-heartbeat-v1`); each refresh re-renders from the newest
//! line, so tailing costs O(screen) regardless of run length.
//!
//! ```text
//! cargo run --release --bin eval_all -- --heartbeat-out /tmp/hb.jsonl &
//! cargo run --release --bin tail_run -- /tmp/hb.jsonl
//! ```
//!
//! `--once` renders the current tail and exits (no terminal control
//! sequences) — the mode tests and scripts use. Follow mode refreshes
//! until interrupted, or exits on its own once the file stops growing for
//! `--idle-exit` seconds (0 = never).

use std::io::{BufRead, BufReader, Seek, SeekFrom};

use bigtiny_obs::{parse_json, validate_heartbeat_line, Json};

const USAGE: &str =
    "usage: tail_run [--once] [--interval-ms N] [--idle-exit SECS] <heartbeat.jsonl>
  --once           render the current tail once and exit (no screen clearing)
  --interval-ms N  refresh cadence in follow mode (default 500)
  --idle-exit SECS exit follow mode after SECS with no new beats (default 0 = never)";

/// How many recent grants/s samples feed the sparkline.
const SPARK_WIDTH: usize = 32;

/// One parsed beat (only the fields the dashboard renders).
struct Beat {
    app: String,
    setup: String,
    seq: u64,
    cycle: u64,
    grants: u64,
    strip: String,
    conservation: Vec<(String, u64)>,
    faults: Vec<(String, u64)>,
    islands: Vec<u64>,
    wall_ms: Option<u64>,
    rate: Option<f64>,
    tasks: Option<u64>,
    steals: Option<u64>,
}

fn get_u64(doc: &Json, key: &str) -> Option<u64> {
    doc.get(key).and_then(Json::as_num).map(|v| v as u64)
}

fn parse_beat(line: &str) -> Option<Beat> {
    validate_heartbeat_line(line).ok()?;
    let doc = parse_json(line).ok()?;
    let pairs = |key: &str| -> Vec<(String, u64)> {
        match doc.get(key) {
            Some(Json::Obj(kv)) => {
                kv.iter().map(|(k, v)| (k.clone(), v.as_num().unwrap_or(0.0) as u64)).collect()
            }
            _ => Vec::new(),
        }
    };
    Some(Beat {
        app: doc.get("app").and_then(Json::as_str)?.to_owned(),
        setup: doc.get("setup").and_then(Json::as_str)?.to_owned(),
        seq: get_u64(&doc, "seq")?,
        cycle: get_u64(&doc, "cycle")?,
        grants: get_u64(&doc, "grants")?,
        strip: doc.get("strip").and_then(Json::as_str)?.to_owned(),
        conservation: pairs("conservation"),
        faults: pairs("faults"),
        islands: doc
            .get("islands")
            .and_then(Json::as_arr)
            .map(|a| a.iter().filter_map(Json::as_num).map(|v| v as u64).collect())
            .unwrap_or_default(),
        wall_ms: get_u64(&doc, "wall_ms"),
        rate: doc.get("grants_per_sec").and_then(Json::as_num),
        tasks: get_u64(&doc, "tasks_executed"),
        steals: get_u64(&doc, "steals"),
    })
}

/// Renders `history`'s rates as a unicode sparkline.
fn sparkline(rates: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = rates.iter().cloned().fold(0.0f64, f64::max);
    if max <= 0.0 {
        return String::new();
    }
    rates.iter().map(|r| BARS[(((r / max) * 7.0).round() as usize).min(7)]).collect()
}

fn fmt_count(v: u64) -> String {
    if v >= 10_000_000 {
        format!("{:.1}M", v as f64 / 1e6)
    } else if v >= 10_000 {
        format!("{:.1}k", v as f64 / 1e3)
    } else {
        v.to_string()
    }
}

/// Renders the dashboard for the newest beat (plus rate history).
fn render(beat: &Beat, rates: &[f64], beats_seen: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{} @ {}  beat #{} ({} seen)\n",
        beat.app, beat.setup, beat.seq, beats_seen
    ));
    out.push_str(&format!(
        "cycle {:>12}  grants {:>10}  wall {:>7}  rate {:>10}/s  {}\n",
        fmt_count(beat.cycle),
        fmt_count(beat.grants),
        beat.wall_ms.map_or("-".to_owned(), |ms| format!("{:.1}s", ms as f64 / 1e3)),
        beat.rate.map_or("-".to_owned(), |r| fmt_count(r as u64)),
        sparkline(rates)
    ));
    // Per-core strip: `r` running, `w` waiting for the token, `.` retired.
    let cores = beat.strip.len();
    let running = beat.strip.chars().filter(|c| *c == 'r').count();
    let retired = beat.strip.chars().filter(|c| *c == '.').count();
    out.push_str(&format!(
        "cores [{}] {} running / {} waiting / {} retired\n",
        beat.strip,
        running,
        cores - running - retired,
        retired
    ));
    if beat.islands.len() > 1 {
        let lead = beat.islands.iter().max().copied().unwrap_or(0);
        let lag = beat.islands.iter().min().copied().unwrap_or(0);
        out.push_str(&format!(
            "islands {:>2}  max lag {} cycles\n",
            beat.islands.len(),
            lead.saturating_sub(lag)
        ));
    }
    if let (Some(tasks), Some(steals)) = (beat.tasks, beat.steals) {
        out.push_str(&format!("tasks {:>9}  steals {:>8}\n", fmt_count(tasks), fmt_count(steals)));
    }
    let bucket_line: Vec<String> =
        beat.conservation.iter().map(|(k, v)| format!("{k}={}", fmt_count(*v))).collect();
    out.push_str(&format!("cycles  {}\n", bucket_line.join("  ")));
    // Fault ticker: only nonzero counters earn a line.
    let live_faults: Vec<String> =
        beat.faults.iter().filter(|(_, v)| *v > 0).map(|(k, v)| format!("{k}={v}")).collect();
    if !live_faults.is_empty() {
        out.push_str(&format!("faults  {}\n", live_faults.join("  ")));
    }
    out
}

fn main() {
    let mut once = false;
    let mut interval_ms = 500u64;
    let mut idle_exit_secs = 0u64;
    let mut path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value\n{USAGE}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--once" => once = true,
            "--interval-ms" => {
                let v = value("--interval-ms");
                interval_ms = v.parse().unwrap_or_else(|_| {
                    eprintln!("--interval-ms: `{v}` is not a u64\n{USAGE}");
                    std::process::exit(2);
                });
            }
            "--idle-exit" => {
                let v = value("--idle-exit");
                idle_exit_secs = v.parse().unwrap_or_else(|_| {
                    eprintln!("--idle-exit: `{v}` is not a u64\n{USAGE}");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_owned()),
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    let path = path.unwrap_or_else(|| {
        eprintln!("{USAGE}");
        std::process::exit(2);
    });

    let mut offset = 0u64;
    let mut rates: Vec<f64> = Vec::new();
    let mut beats_seen = 0usize;
    let mut latest: Option<Beat> = None;
    let mut idle_since = std::time::Instant::now();
    loop {
        // Re-open each poll: the writer may have recreated the file, and a
        // fresh handle with an explicit seek is simpler than inotify.
        if let Ok(f) = std::fs::File::open(&path) {
            let mut r = BufReader::new(f);
            if r.seek(SeekFrom::Start(offset)).is_ok() {
                let mut line = String::new();
                loop {
                    line.clear();
                    match r.read_line(&mut line) {
                        Ok(0) | Err(_) => break,
                        Ok(n) => {
                            offset += n as u64;
                            if let Some(beat) = parse_beat(line.trim_end()) {
                                beats_seen += 1;
                                if let Some(rate) = beat.rate {
                                    rates.push(rate);
                                    if rates.len() > SPARK_WIDTH {
                                        rates.remove(0);
                                    }
                                }
                                // A new run resets the rate window.
                                if latest
                                    .as_ref()
                                    .is_some_and(|l| l.app != beat.app || l.setup != beat.setup)
                                {
                                    rates.clear();
                                }
                                latest = Some(beat);
                                idle_since = std::time::Instant::now();
                            }
                        }
                    }
                }
            }
        }
        if once {
            match &latest {
                Some(beat) => print!("{}", render(beat, &rates, beats_seen)),
                None => {
                    eprintln!("tail_run: {path}: no heartbeat lines yet");
                    std::process::exit(1);
                }
            }
            return;
        }
        if let Some(beat) = &latest {
            // Clear screen + home, then the dashboard.
            print!("\x1b[2J\x1b[H{}", render(beat, &rates, beats_seen));
            use std::io::Write;
            let _ = std::io::stdout().flush();
        }
        if idle_exit_secs > 0 && idle_since.elapsed().as_secs() >= idle_exit_secs {
            eprintln!("tail_run: no new beats for {idle_exit_secs}s, exiting");
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}
