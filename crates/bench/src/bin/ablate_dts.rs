//! Ablations of the DTS design choices called out in DESIGN.md:
//!
//! * `has_stolen_child` optimization on/off (Section IV-C),
//! * victim hands out deque head (classic) vs tail (as literally written in
//!   Figure 3(c) line 48),
//! * steal back-off sweep.

use bigtiny_apps::app_by_name;
use bigtiny_bench::{render_table, run_app, size_from_env, Setup};
use bigtiny_engine::Protocol;

fn main() {
    let size = size_from_env();
    let names = ["cilk5-cs", "ligra-bfs", "ligra-tc"];

    println!("DTS ablations ({size:?} inputs, b.T/HCC-DTS-gwb)\n");

    // 1. has_stolen_child optimization.
    {
        let header: Vec<String> = [
            "App",
            "cycles (opt on)",
            "cycles (opt off)",
            "slowdown off/on",
            "AMOs on",
            "AMOs off",
        ]
        .map(String::from)
        .to_vec();
        let mut rows = Vec::new();
        for name in names {
            let app = app_by_name(name).expect("registered");
            let on = Setup::bt_hcc(Protocol::GpuWb, true);
            let mut off = Setup::bt_hcc(Protocol::GpuWb, true);
            off.rt.dts_has_stolen_child_opt = false;
            off.label.push_str("-nohsc");
            let r_on = run_app(&on, &app, size, 0);
            let r_off = run_app(&off, &app, size, 0);
            rows.push(vec![
                name.to_owned(),
                r_on.cycles.to_string(),
                r_off.cycles.to_string(),
                format!("{:.3}", r_off.cycles as f64 / r_on.cycles as f64),
                r_on.tiny_mem().amos.to_string(),
                r_off.tiny_mem().amos.to_string(),
            ]);
        }
        println!("Ablation 1: has_stolen_child optimization\n{}", render_table(&header, &rows));
    }

    // 2. Steal-from-head vs steal-from-tail in the victim handler.
    {
        let header: Vec<String> =
            ["App", "cycles (head)", "cycles (tail)", "tail/head", "steals head", "steals tail"]
                .map(String::from)
                .to_vec();
        let mut rows = Vec::new();
        for name in names {
            let app = app_by_name(name).expect("registered");
            let head = Setup::bt_hcc(Protocol::GpuWb, true);
            let mut tail = Setup::bt_hcc(Protocol::GpuWb, true);
            tail.rt.dts_steal_from_tail = true;
            tail.label.push_str("-tail");
            let r_head = run_app(&head, &app, size, 0);
            let r_tail = run_app(&tail, &app, size, 0);
            rows.push(vec![
                name.to_owned(),
                r_head.cycles.to_string(),
                r_tail.cycles.to_string(),
                format!("{:.3}", r_tail.cycles as f64 / r_head.cycles as f64),
                r_head.run.stats.steals.to_string(),
                r_tail.run.stats.steals.to_string(),
            ]);
        }
        println!(
            "Ablation 2: victim steals head (FIFO) vs tail (LIFO)\n{}",
            render_table(&header, &rows)
        );
    }

    // 3. Steal back-off sweep.
    {
        let header: Vec<String> =
            ["App", "backoff", "cycles", "steal attempts", "NACKs"].map(String::from).to_vec();
        let mut rows = Vec::new();
        for name in names {
            let app = app_by_name(name).expect("registered");
            for backoff in [4u64, 24, 96, 384] {
                let mut s = Setup::bt_hcc(Protocol::GpuWb, true);
                s.rt.steal_backoff_cycles = backoff;
                s.label = format!("{}-bo{backoff}", s.label);
                let r = run_app(&s, &app, size, 0);
                rows.push(vec![
                    name.to_owned(),
                    backoff.to_string(),
                    r.cycles.to_string(),
                    r.run.stats.steal_attempts.to_string(),
                    r.run.stats.steal_nacks.to_string(),
                ]);
            }
        }
        println!("Ablation 3: steal back-off\n{}", render_table(&header, &rows));
    }

    // 4. Victim-selection policy (an extension beyond the paper: exploit
    //    the mesh's physical locality when choosing victims).
    {
        use bigtiny_core::VictimPolicy;
        let header: Vec<String> =
            ["App", "policy", "cycles", "steals", "ULI mean hops"].map(String::from).to_vec();
        let mut rows = Vec::new();
        for name in names {
            let app = app_by_name(name).expect("registered");
            for policy in
                [VictimPolicy::Random, VictimPolicy::RoundRobin, VictimPolicy::NearestFirst]
            {
                let mut s = Setup::bt_hcc(Protocol::GpuWb, true);
                s.rt.victim_policy = policy;
                s.label = format!("{}-{policy:?}", s.label);
                let r = run_app(&s, &app, size, 0);
                rows.push(vec![
                    name.to_owned(),
                    format!("{policy:?}"),
                    r.cycles.to_string(),
                    r.run.stats.steals.to_string(),
                    format!("{:.1}", r.run.report.uli.mean_hops),
                ]);
            }
        }
        println!("Ablation 4: victim selection policy\n{}", render_table(&header, &rows));
    }

    // 5. Lock-based vs Chase-Lev deque for the hardware-coherence baseline.
    {
        use bigtiny_core::DequeKind;
        let header: Vec<String> =
            ["App", "deque", "cycles", "AMOs (all cores)"].map(String::from).to_vec();
        let mut rows = Vec::new();
        for name in names {
            let app = app_by_name(name).expect("registered");
            for kind in [DequeKind::Locked, DequeKind::ChaseLev] {
                let mut s = Setup::bt_mesi();
                s.rt.deque_kind = kind;
                s.label = format!("{}-{kind:?}", s.label);
                let r = run_app(&s, &app, size, 0);
                let all: Vec<usize> = (0..64).collect();
                rows.push(vec![
                    name.to_owned(),
                    format!("{kind:?}"),
                    r.cycles.to_string(),
                    r.run.report.mem_stats_over(&all).amos.to_string(),
                ]);
            }
        }
        println!("Ablation 5: baseline deque implementation\n{}", render_table(&header, &rows));
    }
}
