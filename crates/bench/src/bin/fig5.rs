//! Figure 5: speedup of each big.TINY HCC configuration over `b.T/MESI`,
//! per application.

use bigtiny_bench::{
    apps_from_env, find_result, geomean, render_table, run_matrix, size_from_env, Setup,
};

fn main() {
    let size = size_from_env();
    let apps = apps_from_env();
    let setups = Setup::big_tiny_matrix();
    let results = run_matrix(&setups, &apps, size);

    let labels: Vec<String> = setups.iter().skip(1).map(|s| s.label.clone()).collect();
    let mut header = vec!["Name".to_owned()];
    header.extend(labels.iter().cloned());

    let mut rows = Vec::new();
    let mut geo: Vec<Vec<f64>> = vec![Vec::new(); labels.len()];
    for app in &apps {
        let mesi = find_result(&results, app.name, "b.T/MESI").cycles as f64;
        let mut row = vec![app.name.to_owned()];
        for (i, label) in labels.iter().enumerate() {
            let v = mesi / find_result(&results, app.name, label).cycles as f64;
            geo[i].push(v);
            row.push(format!("{v:.2}"));
        }
        rows.push(row);
    }
    let mut geo_row = vec!["geomean".to_owned()];
    geo_row.extend(geo.iter().map(|g| format!("{:.2}", geomean(g.iter().copied()))));
    rows.push(geo_row);

    println!("Figure 5: speedup over big.TINY/MESI ({size:?} inputs)\n");
    println!("{}", render_table(&header, &rows));
}
