//! Energy comparison across configurations (the abstract's "similar energy
//! efficiency" claim): first-order energy estimates, normalized to
//! `b.T/MESI`, plus an energy-efficiency view against `O3x8`.

use bigtiny_bench::{
    apps_from_env, find_result, geomean, render_table, run_matrix, size_from_env, Setup,
};
use bigtiny_engine::{EnergyModel, SystemConfig};

fn main() {
    let size = size_from_env();
    let apps = apps_from_env();
    let mut setups = vec![Setup::o3(8)];
    setups.extend(Setup::big_tiny_matrix());
    let results = run_matrix(&setups, &apps, size);
    let model = EnergyModel::default();

    let config_of = |label: &str| -> SystemConfig {
        setups.iter().find(|s| s.label == label).expect("known setup").sys.clone()
    };

    let mut header = vec!["Name".to_owned()];
    header.extend(setups.iter().map(|s| format!("E {}", s.label)));
    let mut rows = Vec::new();
    let mut geo: Vec<Vec<f64>> = vec![Vec::new(); setups.len()];
    for app in &apps {
        let mesi_e = {
            let r = find_result(&results, app.name, "b.T/MESI");
            model.estimate(&config_of("b.T/MESI"), &r.run.report).total()
        };
        let mut row = vec![app.name.to_owned()];
        for (i, setup) in setups.iter().enumerate() {
            let r = find_result(&results, app.name, &setup.label);
            let e = model.estimate(&setup.sys, &r.run.report).total();
            let norm = e / mesi_e;
            geo[i].push(norm);
            row.push(format!("{norm:.2}"));
        }
        rows.push(row);
    }
    let mut geo_row = vec!["geomean".to_owned()];
    geo_row.extend(geo.iter().map(|g| format!("{:.2}", geomean(g.iter().copied()))));
    rows.push(geo_row);

    println!("Energy (total, arbitrary units) normalized to b.T/MESI ({size:?} inputs)\n");
    println!("{}", render_table(&header, &rows));
    println!("Expected shape: HCC within ~±20% of MESI; DTS recovers most of the overhead");
    println!(
        "(the paper: 'similar energy efficiency compared to full-system hardware coherence')."
    );
}
