//! Validates a JSON-lines results file (as written via `BIGTINY_JSON`) with
//! the strict flat-object parser, so CI fails loudly on an unparseable
//! record (e.g. a bare `NaN`) instead of shipping a corrupt artifact.

use bigtiny_bench::parse_json_line;

fn main() {
    let path = std::env::args().nth(1).unwrap_or_else(|| {
        eprintln!("usage: json_check <results.jsonl>");
        std::process::exit(2);
    });
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("json_check: {path}: {e}");
        std::process::exit(2);
    });
    let mut records = 0usize;
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_json_line(line) {
            Ok(kv) if kv.is_empty() => {
                eprintln!("{path}:{}: empty record", idx + 1);
                std::process::exit(1);
            }
            Ok(_) => records += 1,
            Err(e) => {
                eprintln!("{path}:{}: invalid JSON line: {e}\n  {line}", idx + 1);
                std::process::exit(1);
            }
        }
    }
    if records == 0 {
        eprintln!("json_check: {path}: no records");
        std::process::exit(1);
    }
    println!("{path}: {records} valid records");
}
