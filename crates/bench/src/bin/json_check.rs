//! Validates a JSON results artifact before CI ships it.
//!
//! Three shapes are accepted:
//!
//! * a heartbeat stream (what `--heartbeat-out` writes) — recognised by
//!   the `bigtiny-obs-heartbeat-v1` schema tag on the first line; every
//!   line is schema-validated and `seq` must be monotone per run;
//! * a single nested document (what `eval_all --metrics-out` writes) —
//!   strictly parsed whole-file with the `bigtiny-obs` parser; a metrics
//!   document additionally needs a non-empty `runs` array;
//! * a JSON-lines file (as written via `BIGTINY_JSON`) — every line run
//!   through the strict flat-object parser, so an unparseable record (e.g.
//!   a bare `NaN`) fails loudly instead of corrupting downstream analysis.

use bigtiny_bench::parse_json_line;
use bigtiny_obs::{
    looks_like_heartbeat_stream, parse_json, validate_heartbeat_stream, Json,
    METRICS_SCHEMAS_ACCEPTED,
};

fn main() {
    let path = std::env::args().nth(1).unwrap_or_else(|| {
        eprintln!("usage: json_check <results.jsonl | metrics.json>");
        std::process::exit(2);
    });
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("json_check: {path}: {e}");
        std::process::exit(2);
    });

    // Heartbeat streams first: each line is itself a nested document, so
    // they must be routed before the whole-file parse (which would reject
    // the multi-line stream) and the flat-line fallback (which rejects
    // nesting).
    if looks_like_heartbeat_stream(&text) {
        match validate_heartbeat_stream(&text) {
            Ok(beats) => {
                println!("{path}: valid heartbeat stream, {beats} beats");
                return;
            }
            Err(e) => {
                eprintln!("json_check: {path}: invalid heartbeat stream: {e}");
                std::process::exit(1);
            }
        }
    }

    // A nested container document (metrics or trace output) parses
    // whole-file; flat records — even a single-line file — fall through to
    // the stricter line parser.
    let nested = |doc: &Json| match doc {
        Json::Arr(_) => true,
        Json::Obj(kv) => kv.iter().any(|(_, v)| matches!(v, Json::Obj(_) | Json::Arr(_))),
        _ => false,
    };
    if let Some(doc) = parse_json(text.trim_end()).ok().filter(nested) {
        if let Some(runs) = doc.get("runs") {
            let n = runs.as_arr().map(<[Json]>::len).unwrap_or(0);
            if n == 0 {
                eprintln!("json_check: {path}: document has an empty or non-array `runs`");
                std::process::exit(1);
            }
            let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("(none)");
            // Metrics documents must carry a schema version readers
            // understand; anything else under the metrics prefix is a
            // silent-drift hazard.
            if schema.starts_with("bigtiny-obs-metrics-")
                && !METRICS_SCHEMAS_ACCEPTED.contains(&schema)
            {
                eprintln!(
                    "json_check: {path}: unknown metrics schema `{schema}` (accepted: {})",
                    METRICS_SCHEMAS_ACCEPTED.join(", ")
                );
                std::process::exit(1);
            }
            // Model-check verdict documents (`model_check` bin): pin the
            // schema version and the per-cell keys downstream tooling
            // reads, so a silent field rename fails here instead of in
            // analysis.
            if schema.starts_with("bigtiny-model-check-") {
                if schema != "bigtiny-model-check-v1" && schema != "bigtiny-model-check-v2" {
                    eprintln!("json_check: {path}: unknown model-check schema `{schema}`");
                    std::process::exit(1);
                }
                let mut required = vec![
                    "app",
                    "setup",
                    "explored",
                    "pruned",
                    "truncated",
                    "clean",
                    "first_fail_script",
                ];
                if schema == "bigtiny-model-check-v2" {
                    // v2 added the deque-policy sweep keys.
                    required.extend(["policy", "dup_injected"]);
                }
                for (i, run) in runs.as_arr().unwrap_or(&[]).iter().enumerate() {
                    for key in &required {
                        if run.get(key).is_none() {
                            eprintln!("json_check: {path}: run {i} is missing `{key}`");
                            std::process::exit(1);
                        }
                    }
                }
            }
            println!("{path}: valid document, schema {schema}, {n} runs");
        } else {
            println!("{path}: valid JSON document");
        }
        return;
    }

    let mut records = 0usize;
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_json_line(line) {
            Ok(kv) if kv.is_empty() => {
                eprintln!("{path}:{}: empty record", idx + 1);
                std::process::exit(1);
            }
            Ok(_) => records += 1,
            Err(e) => {
                eprintln!("{path}:{}: invalid JSON line: {e}\n  {line}", idx + 1);
                std::process::exit(1);
            }
        }
    }
    if records == 0 {
        eprintln!("json_check: {path}: no records");
        std::process::exit(1);
    }
    println!("{path}: {records} valid records");
}
