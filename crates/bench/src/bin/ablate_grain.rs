//! Generalization of Figure 4: task-granularity sensitivity of every
//! kernel, comparing `b.T/MESI` with `b.T/HCC-gwb` and `b.T/HCC-DTS-gwb` —
//! the paper's observation that fine granularity penalizes HCC most and
//! makes DTS's advantage grow.

use bigtiny_bench::{apps_from_env, render_table, run_app, size_from_env, Setup};
use bigtiny_engine::Protocol;

fn main() {
    let size = size_from_env();
    let apps = apps_from_env();
    let grains = [4usize, 16, 64, 256];

    let mesi = Setup::bt_mesi();
    let gwb = Setup::bt_hcc(Protocol::GpuWb, false);
    let dts = Setup::bt_hcc(Protocol::GpuWb, true);

    let header: Vec<String> = ["App", "grain", "MESI cycles", "gwb/MESI", "DTS-gwb/MESI", "tasks"]
        .map(String::from)
        .to_vec();
    let mut rows = Vec::new();
    for app in &apps {
        for grain in grains {
            let r_mesi = run_app(&mesi, app, size, grain);
            let r_gwb = run_app(&gwb, app, size, grain);
            let r_dts = run_app(&dts, app, size, grain);
            eprintln!("[ablate_grain] {} grain {grain}", app.name);
            rows.push(vec![
                app.name.to_owned(),
                grain.to_string(),
                r_mesi.cycles.to_string(),
                format!("{:.3}", r_mesi.cycles as f64 / r_gwb.cycles as f64),
                format!("{:.3}", r_mesi.cycles as f64 / r_dts.cycles as f64),
                r_mesi.run.stats.workspan.tasks.to_string(),
            ]);
        }
    }
    println!("Granularity sensitivity across kernels ({size:?} inputs)\n");
    println!("{}", render_table(&header, &rows));
    println!("Expected shape: finer grain widens the HCC penalty and the DTS recovery.");
}
