//! `unsafe_audit`: source lint gating every `unsafe` site on a
//! `// SAFETY:` comment.
//!
//! The workspace forbids `unsafe` everywhere except the two crates that
//! need it (`bigtiny-engine` for the fiber backends, `bigtiny-core` for
//! one `Sync` wrapper), and this bin keeps the remaining inventory
//! honest: it walks every `.rs` file under `crates/` and `tests/` and
//! fails — emitting `file:line` for each offender — when a line using
//! the `unsafe` keyword has no `SAFETY:` comment on the same line or
//! within the preceding few lines. Run from the repo root (CI's `lint`
//! job does); an optional argument overrides the root.
//!
//! The lint is a std-only token scan, not a parser: the keyword is
//! matched on word boundaries (so `forbid(unsafe_code)` never trips it)
//! and comment-only lines are skipped. That is deliberately blunt —
//! the point is that every new `unsafe` site ships with its argument,
//! not that the argument parses.

use std::path::{Path, PathBuf};

/// How many lines above an `unsafe` site a `SAFETY:` comment may sit.
/// Generous enough for an attribute stack (`#[unsafe(naked)]`,
/// `#[cfg(...)]`) between the comment and the keyword.
const WINDOW: usize = 6;

fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target" || n == ".git") {
                continue;
            }
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Whether `line` uses the keyword on a word boundary, outside a
/// line-comment tail.
fn uses_keyword(line: &str, keyword: &str) -> bool {
    let code = line.split("//").next().unwrap_or(line);
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find(keyword) {
        let start = from + pos;
        let end = start + keyword.len();
        let left_ok =
            start == 0 || !(bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_');
        let right_ok =
            end == bytes.len() || !(bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_');
        if left_ok && right_ok {
            return true;
        }
        from = end;
    }
    false
}

fn audit_file(path: &Path, keyword: &str, offenders: &mut Vec<String>) -> usize {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("unsafe_audit: {}: {e}", path.display());
            std::process::exit(2);
        }
    };
    let lines: Vec<&str> = text.lines().collect();
    let mut sites = 0;
    for (i, line) in lines.iter().enumerate() {
        if line.trim_start().starts_with("//") || !uses_keyword(line, keyword) {
            continue;
        }
        sites += 1;
        // Covered by a `// SAFETY:` comment nearby, or — for `unsafe fn`
        // declarations — by a `/// # Safety` doc section in the
        // contiguous doc/attribute block above.
        let window = (i.saturating_sub(WINDOW)..=i).any(|j| lines[j].contains("SAFETY:"));
        let doc_section = (0..i)
            .rev()
            .take_while(|&j| {
                let t = lines[j].trim_start();
                t.starts_with("//") || t.starts_with("#[") || t.is_empty()
            })
            .any(|j| lines[j].trim_start().starts_with("/// # Safety"));
        if !(window || doc_section) {
            offenders.push(format!("{}:{}", path.display(), i + 1));
        }
    }
    sites
}

fn main() {
    let root = std::env::args().nth(1).unwrap_or_else(|| ".".to_owned());
    // Built at runtime so this file never matches its own scan.
    let keyword = concat!("un", "safe");
    let mut files = Vec::new();
    for dir in ["crates", "tests"] {
        rust_files(&Path::new(&root).join(dir), &mut files);
    }
    if files.is_empty() {
        eprintln!("unsafe_audit: no .rs files under {root}/crates — run from the repo root");
        std::process::exit(2);
    }
    files.sort();

    let mut offenders = Vec::new();
    let mut sites = 0;
    for file in &files {
        sites += audit_file(file, keyword, &mut offenders);
    }
    if offenders.is_empty() {
        println!(
            "unsafe_audit: {} files, {sites} {keyword} site(s), all with SAFETY: comments",
            files.len()
        );
        return;
    }
    eprintln!("unsafe_audit: {} {keyword} site(s) without a SAFETY: comment:", offenders.len());
    for o in &offenders {
        eprintln!("  {o}");
    }
    std::process::exit(1);
}
