//! Table V: results on the 256-core big.TINY system (4 big + 252 tiny,
//! 8x32 mesh, 4x the banks and memory bandwidth) with larger inputs, for
//! the five kernels the paper selects.

use bigtiny_apps::{app_by_name, AppSize};
use bigtiny_bench::{render_table, run_app, Setup};
use bigtiny_core::RuntimeKind;
use bigtiny_engine::Protocol;

fn main() {
    // Table V always uses the Large inputs unless overridden for smoke runs.
    let size = match std::env::var("BIGTINY_SIZE").as_deref() {
        Ok("test") => AppSize::Test,
        Ok("eval") => AppSize::Eval,
        _ => AppSize::Large,
    };
    let names = ["cilk5-cs", "ligra-bc", "ligra-bfs", "ligra-cc", "ligra-tc"];

    let o3x1 = Setup::o3(1);
    let mesi = Setup::bt_256(Protocol::Mesi, RuntimeKind::Baseline);
    let gwb = Setup::bt_256(Protocol::GpuWb, RuntimeKind::Hcc);
    let dts = Setup::bt_256(Protocol::GpuWb, RuntimeKind::Dts);

    let header: Vec<String> =
        ["Name", "b.T/MESI vs O3x1", "HCC-gwb vs b.T/MESI", "HCC-DTS-gwb vs b.T/MESI"]
            .map(String::from)
            .to_vec();
    let mut rows = Vec::new();
    for name in names {
        let app = app_by_name(name).expect("registered");
        let t0 = std::time::Instant::now();
        let r_o3 = run_app(&o3x1, &app, size, 0);
        let r_mesi = run_app(&mesi, &app, size, 0);
        let r_gwb = run_app(&gwb, &app, size, 0);
        let r_dts = run_app(&dts, &app, size, 0);
        eprintln!("[table5] {name}: {:.1}s wall", t0.elapsed().as_secs_f64());
        rows.push(vec![
            name.to_owned(),
            format!("{:.1}", r_o3.cycles as f64 / r_mesi.cycles as f64),
            format!("{:.2}", r_mesi.cycles as f64 / r_gwb.cycles as f64),
            format!("{:.2}", r_mesi.cycles as f64 / r_dts.cycles as f64),
        ]);
    }
    println!("Table V: 256-core big.TINY system ({size:?} inputs)\n");
    println!("{}", render_table(&header, &rows));
    println!(
        "Expected shape: large b.T/MESI speedups over one big core; DTS clearly above plain HCC,"
    );
    println!("with a larger DTS advantage than on the 64-core system (steals cost more at scale).");
}
