//! Figure 8: total on-chip network traffic in bytes, split by message
//! category and normalized to `b.T/MESI`, per application and configuration.

use bigtiny_bench::{
    apps_from_env, find_result, render_table, run_matrix, size_from_env, Setup, TrafficClass,
};

/// Figure 8's legend order.
const CLASSES: [TrafficClass; 9] = [
    TrafficClass::CpuReq,
    TrafficClass::WbReq,
    TrafficClass::DataResp,
    TrafficClass::SyncReq,
    TrafficClass::SyncResp,
    TrafficClass::CohReq,
    TrafficClass::CohResp,
    TrafficClass::DramReq,
    TrafficClass::DramResp,
];

fn main() {
    let size = bigtiny_bench::size_from_env();
    let _ = size_from_env;
    let apps = apps_from_env();
    let setups = Setup::big_tiny_matrix();
    let results = run_matrix(&setups, &apps, size);

    let mut header = vec!["Name".to_owned(), "Config".to_owned()];
    header.extend(CLASSES.iter().map(|c| c.label().to_owned()));
    header.push("total(norm)".to_owned());

    let mut rows = Vec::new();
    for app in &apps {
        let mesi_total = find_result(&results, app.name, "b.T/MESI").traffic_bytes().max(1) as f64;
        for setup in &setups {
            let r = find_result(&results, app.name, &setup.label);
            let t = &r.run.report.traffic;
            let mut row = vec![app.name.to_owned(), setup.label.clone()];
            for c in CLASSES {
                row.push(format!("{:.3}", t.bytes(c) as f64 / mesi_total));
            }
            row.push(format!("{:.3}", r.traffic_bytes() as f64 / mesi_total));
            rows.push(row);
        }
    }
    println!("Figure 8: OCN traffic by category, normalized to b.T/MESI ({size:?} inputs)\n");
    println!("{}", render_table(&header, &rows));
    println!("Expected shape: gwt dominated by wb_req write-throughs; DTS cuts cpu_req/data_resp and (for gwb) wb_req.");
}
