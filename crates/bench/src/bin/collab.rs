//! Collaborative execution: the paper's premise is that the work-stealing
//! runtime lets big and tiny cores execute one task-parallel program
//! *together*. This harness compares the combined big.TINY machine against
//! its two halves run alone.

use bigtiny_bench::{apps_from_env, geomean, render_table, run_app, size_from_env, Setup};
use bigtiny_core::RuntimeKind;
use bigtiny_engine::{Protocol, SystemConfig};

fn main() {
    let size = size_from_env();
    let apps = apps_from_env();

    let big_only = Setup::o3(4);
    let tiny_only = Setup {
        label: "tiny60/MESI".to_owned(),
        sys: SystemConfig::tiny_only(60, Protocol::Mesi),
        rt: bigtiny_core::RuntimeConfig::new(RuntimeKind::Baseline),
    };
    let combined = Setup::bt_mesi();

    let header: Vec<String> =
        ["Name", "4 big only", "60 tiny only", "4 big + 60 tiny", "combined / best half"]
            .map(String::from)
            .to_vec();
    let mut rows = Vec::new();
    let mut gains = Vec::new();
    for app in &apps {
        let b = run_app(&big_only, app, size, 0).cycles;
        let t = run_app(&tiny_only, app, size, 0).cycles;
        let c = run_app(&combined, app, size, 0).cycles;
        eprintln!("[collab] {}", app.name);
        let gain = b.min(t) as f64 / c as f64;
        gains.push(gain);
        rows.push(vec![
            app.name.to_owned(),
            b.to_string(),
            t.to_string(),
            c.to_string(),
            format!("{gain:.2}x"),
        ]);
    }
    rows.push(vec![
        "geomean".to_owned(),
        String::new(),
        String::new(),
        String::new(),
        format!("{:.2}x", geomean(gains)),
    ]);
    println!("Collaborative execution on big.TINY/MESI ({size:?} inputs): cycles\n");
    println!("{}", render_table(&header, &rows));
    println!("Expected: the combined machine beats both the big-only and tiny-only halves,");
    println!("because the work-stealing runtime load-balances across heterogeneous cores.");
}
