//! Figure 6: aggregate tiny-core L1 data-cache hit rate per application and
//! configuration.

use bigtiny_bench::{apps_from_env, find_result, render_table, run_matrix, size_from_env, Setup};

fn main() {
    let size = size_from_env();
    let apps = apps_from_env();
    let setups = Setup::big_tiny_matrix();
    let results = run_matrix(&setups, &apps, size);

    let mut header = vec!["Name".to_owned()];
    header.extend(setups.iter().map(|s| s.label.clone()));

    let mut rows = Vec::new();
    for app in &apps {
        let mut row = vec![app.name.to_owned()];
        for setup in &setups {
            let r = find_result(&results, app.name, &setup.label);
            row.push(format!("{:.1}%", 100.0 * r.l1d_hit_rate()));
        }
        rows.push(row);
    }
    println!("Figure 6: L1 data cache hit rate, tiny cores ({size:?} inputs)\n");
    println!("{}", render_table(&header, &rows));
    println!(
        "Expected shape: MESI >= DTS variants >= HCC variants; gwt lowest (no write-allocate)."
    );
}
