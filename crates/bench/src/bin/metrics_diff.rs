//! Compares two bigtiny-obs metrics documents and flags regressions.
//!
//! Reads a baseline and a new document (schema v1 or v2 — the diff only
//! touches keys both versions carry), matches runs by `(app, setup)`, and
//! prints per-run deltas for completion cycles and steal traffic. Exits
//! nonzero when any common run's cycle count moved by more than
//! `--threshold` percent, so CI can gate on a committed baseline.
//!
//! Runs present on only one side are reported but never fail the check —
//! growing the kernel matrix must not require regenerating history.

use bigtiny_bench::render_table;
use bigtiny_obs::{parse_json, Json, METRICS_SCHEMAS_ACCEPTED};

const USAGE: &str = "usage: metrics_diff BASELINE.json NEW.json [--threshold PCT]
  --threshold PCT  maximum |cycle delta| per run, in percent (default 0:
                   any cycle movement fails — the simulator is deterministic)";

struct Run {
    app: String,
    setup: String,
    cycles: f64,
    steal_attempts: f64,
    steal_hits: f64,
}

fn load(path: &str) -> Vec<Run> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("metrics_diff: {path}: {e}");
        std::process::exit(2);
    });
    let doc = parse_json(text.trim_end()).unwrap_or_else(|e| {
        eprintln!("metrics_diff: {path}: invalid JSON: {e}");
        std::process::exit(2);
    });
    let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("(none)");
    if !METRICS_SCHEMAS_ACCEPTED.contains(&schema) {
        eprintln!(
            "metrics_diff: {path}: unsupported schema `{schema}` (accepted: {})",
            METRICS_SCHEMAS_ACCEPTED.join(", ")
        );
        std::process::exit(2);
    }
    let runs = doc.get("runs").and_then(Json::as_arr).unwrap_or_else(|| {
        eprintln!("metrics_diff: {path}: document has no `runs` array");
        std::process::exit(2);
    });
    let num = |r: &Json, path: &[&str]| -> f64 {
        let mut cur = r.clone();
        for k in path {
            match cur.get(k) {
                Some(v) => cur = v.clone(),
                None => return 0.0,
            }
        }
        cur.as_num().unwrap_or(0.0)
    };
    runs.iter()
        .map(|r| Run {
            app: r.get("app").and_then(Json::as_str).unwrap_or("?").to_owned(),
            setup: r.get("setup").and_then(Json::as_str).unwrap_or("?").to_owned(),
            cycles: num(r, &["cycles"]),
            steal_attempts: num(r, &["steals", "attempts"]),
            steal_hits: num(r, &["steals", "hits"]),
        })
        .collect()
}

fn main() {
    let mut positional: Vec<String> = Vec::new();
    let mut threshold = 0.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threshold" => {
                let v = args.next().unwrap_or_else(|| {
                    eprintln!("--threshold needs a value\n{USAGE}");
                    std::process::exit(2);
                });
                threshold = v.parse().unwrap_or_else(|_| {
                    eprintln!("--threshold: `{v}` is not a number\n{USAGE}");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other if other.starts_with("--") => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                std::process::exit(2);
            }
            other => positional.push(other.to_owned()),
        }
    }
    let [base_path, new_path] = positional.as_slice() else {
        eprintln!("{USAGE}");
        std::process::exit(2);
    };

    let base = load(base_path);
    let new = load(new_path);

    let pct = |old: f64, new: f64| -> f64 {
        if old == 0.0 {
            if new == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            100.0 * (new - old) / old
        }
    };

    let mut rows = Vec::new();
    let mut worst: f64 = 0.0;
    let mut common = 0usize;
    for b in &base {
        let Some(n) = new.iter().find(|n| n.app == b.app && n.setup == b.setup) else {
            println!("[metrics_diff] only in baseline: {} @ {}", b.app, b.setup);
            continue;
        };
        common += 1;
        let dc = pct(b.cycles, n.cycles);
        worst = worst.max(dc.abs());
        rows.push(vec![
            b.app.clone(),
            b.setup.clone(),
            format!("{}", b.cycles),
            format!("{}", n.cycles),
            format!("{dc:+.3}%"),
            format!("{:+.0}", n.steal_attempts - b.steal_attempts),
            format!("{:+.0}", n.steal_hits - b.steal_hits),
        ]);
    }
    for n in &new {
        if !base.iter().any(|b| b.app == n.app && b.setup == n.setup) {
            println!("[metrics_diff] only in new: {} @ {}", n.app, n.setup);
        }
    }

    let header: Vec<String> =
        ["App", "Config", "cycles(base)", "cycles(new)", "delta", "d-attempts", "d-hits"]
            .map(String::from)
            .to_vec();
    println!("{}", render_table(&header, &rows));

    if common == 0 {
        eprintln!("[metrics_diff] FAIL: no common (app, setup) runs between the two documents");
        std::process::exit(1);
    }
    if worst > threshold {
        eprintln!(
            "[metrics_diff] FAIL: worst cycle delta {worst:.3}% exceeds threshold {threshold}%"
        );
        std::process::exit(1);
    }
    println!(
        "[metrics_diff] OK: {common} runs compared, worst cycle delta {worst:.3}% \
         (threshold {threshold}%)"
    );
}
