//! Compares two bigtiny-obs metrics documents and flags regressions.
//!
//! Reads a baseline and a new document (any accepted schema — the diff
//! only touches keys every version carries, plus the v3 `deque_policy`
//! label when present), matches runs by `(app, setup, deque_policy)`, and
//! prints per-run deltas for completion cycles and steal traffic. Exits
//! nonzero when any common run's cycle count moved by more than
//! `--threshold` percent.
//!
//! Runs present on only one side are reported as explicit `missing` rows
//! and **fail the check**: a silently dropped cell is indistinguishable
//! from a passing one, which is exactly how a gate rots. When growing the
//! kernel matrix intentionally, pass `--allow-missing` for the one run
//! that regenerates the baseline.

use bigtiny_bench::render_table;
use bigtiny_obs::{parse_json, Json, METRICS_SCHEMAS_ACCEPTED};

const USAGE: &str = "usage: metrics_diff BASELINE.json NEW.json [--threshold PCT] [--allow-missing]
  --threshold PCT  maximum |cycle delta| per run, in percent (default 0:
                   any cycle movement fails — the simulator is deterministic)
  --allow-missing  do not fail on cells present in only one document
                   (for intentional matrix growth; missing rows still print)";

struct Run {
    app: String,
    setup: String,
    /// Deque-policy label (metrics v3). Pre-v3 documents carry no label
    /// but every pre-v3 run used the locked deque, so `load` defaults the
    /// field to "locked" and old baselines keep matching one-to-one.
    policy: String,
    cycles: f64,
    steal_attempts: f64,
    steal_hits: f64,
}

impl Run {
    fn key(&self) -> (&str, &str, &str) {
        (&self.app, &self.setup, &self.policy)
    }

    /// Cell label for the report: `app @ setup [policy]`.
    fn label(&self) -> String {
        if self.policy.is_empty() {
            format!("{} @ {}", self.app, self.setup)
        } else {
            format!("{} @ {} [{}]", self.app, self.setup, self.policy)
        }
    }
}

fn load(path: &str) -> Vec<Run> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("metrics_diff: {path}: {e}");
        std::process::exit(2);
    });
    let doc = parse_json(text.trim_end()).unwrap_or_else(|e| {
        eprintln!("metrics_diff: {path}: invalid JSON: {e}");
        std::process::exit(2);
    });
    let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("(none)");
    if !METRICS_SCHEMAS_ACCEPTED.contains(&schema) {
        eprintln!(
            "metrics_diff: {path}: unsupported schema `{schema}` (accepted: {})",
            METRICS_SCHEMAS_ACCEPTED.join(", ")
        );
        std::process::exit(2);
    }
    let runs = doc.get("runs").and_then(Json::as_arr).unwrap_or_else(|| {
        eprintln!("metrics_diff: {path}: document has no `runs` array");
        std::process::exit(2);
    });
    let num = |r: &Json, path: &[&str]| -> f64 {
        let mut cur = r.clone();
        for k in path {
            match cur.get(k) {
                Some(v) => cur = v.clone(),
                None => return 0.0,
            }
        }
        cur.as_num().unwrap_or(0.0)
    };
    runs.iter()
        .map(|r| Run {
            app: r.get("app").and_then(Json::as_str).unwrap_or("?").to_owned(),
            setup: r.get("setup").and_then(Json::as_str).unwrap_or("?").to_owned(),
            policy: r.get("deque_policy").and_then(Json::as_str).unwrap_or("locked").to_owned(),
            cycles: num(r, &["cycles"]),
            steal_attempts: num(r, &["steals", "attempts"]),
            steal_hits: num(r, &["steals", "hits"]),
        })
        .collect()
}

/// The diff verdict, separated from I/O so the gate logic is unit-tested.
struct Diff {
    rows: Vec<Vec<String>>,
    /// Worst absolute cycle delta over common cells, in percent.
    worst: f64,
    common: usize,
    missing: usize,
}

fn diff(base: &[Run], new: &[Run]) -> Diff {
    let pct = |old: f64, new: f64| -> f64 {
        if old == 0.0 {
            if new == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            100.0 * (new - old) / old
        }
    };

    let mut d = Diff { rows: Vec::new(), worst: 0.0, common: 0, missing: 0 };
    for b in base {
        let Some(n) = new.iter().find(|n| n.key() == b.key()) else {
            d.missing += 1;
            d.rows.push(vec![
                b.app.clone(),
                b.setup.clone(),
                b.policy.clone(),
                format!("{}", b.cycles),
                "—".into(),
                "missing".into(),
                "—".into(),
                "—".into(),
            ]);
            continue;
        };
        d.common += 1;
        let dc = pct(b.cycles, n.cycles);
        d.worst = d.worst.max(dc.abs());
        d.rows.push(vec![
            b.app.clone(),
            b.setup.clone(),
            b.policy.clone(),
            format!("{}", b.cycles),
            format!("{}", n.cycles),
            format!("{dc:+.3}%"),
            format!("{:+.0}", n.steal_attempts - b.steal_attempts),
            format!("{:+.0}", n.steal_hits - b.steal_hits),
        ]);
    }
    for n in new {
        if !base.iter().any(|b| b.key() == n.key()) {
            d.missing += 1;
            d.rows.push(vec![
                n.app.clone(),
                n.setup.clone(),
                n.policy.clone(),
                "—".into(),
                format!("{}", n.cycles),
                "missing".into(),
                "—".into(),
                "—".into(),
            ]);
        }
    }
    d
}

fn main() {
    let mut positional: Vec<String> = Vec::new();
    let mut threshold = 0.0f64;
    let mut allow_missing = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threshold" => {
                let v = args.next().unwrap_or_else(|| {
                    eprintln!("--threshold needs a value\n{USAGE}");
                    std::process::exit(2);
                });
                threshold = v.parse().unwrap_or_else(|_| {
                    eprintln!("--threshold: `{v}` is not a number\n{USAGE}");
                    std::process::exit(2);
                });
            }
            "--allow-missing" => allow_missing = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other if other.starts_with("--") => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                std::process::exit(2);
            }
            other => positional.push(other.to_owned()),
        }
    }
    let [base_path, new_path] = positional.as_slice() else {
        eprintln!("{USAGE}");
        std::process::exit(2);
    };

    let base = load(base_path);
    let new = load(new_path);
    let d = diff(&base, &new);

    for r in &base {
        if !new.iter().any(|n| n.key() == r.key()) {
            println!("[metrics_diff] only in baseline: {}", r.label());
        }
    }
    for r in &new {
        if !base.iter().any(|b| b.key() == r.key()) {
            println!("[metrics_diff] only in new: {}", r.label());
        }
    }

    let header: Vec<String> =
        ["App", "Config", "Policy", "cycles(base)", "cycles(new)", "delta", "d-attempts", "d-hits"]
            .map(String::from)
            .to_vec();
    println!("{}", render_table(&header, &d.rows));

    if d.common == 0 {
        eprintln!("[metrics_diff] FAIL: no common (app, setup, policy) runs between the documents");
        std::process::exit(1);
    }
    if d.missing > 0 && !allow_missing {
        eprintln!(
            "[metrics_diff] FAIL: {} cell(s) present in only one document \
             (pass --allow-missing when growing the matrix intentionally)",
            d.missing
        );
        std::process::exit(1);
    }
    if d.worst > threshold {
        eprintln!(
            "[metrics_diff] FAIL: worst cycle delta {:.3}% exceeds threshold {threshold}%",
            d.worst
        );
        std::process::exit(1);
    }
    println!(
        "[metrics_diff] OK: {} runs compared ({} missing), worst cycle delta {:.3}% \
         (threshold {threshold}%)",
        d.common, d.missing, d.worst
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(app: &str, setup: &str, policy: &str, cycles: f64) -> Run {
        Run {
            app: app.into(),
            setup: setup.into(),
            policy: policy.into(),
            cycles,
            steal_attempts: 0.0,
            steal_hits: 0.0,
        }
    }

    #[test]
    fn missing_cells_become_explicit_rows_on_both_sides() {
        let base = vec![run("nq", "b.T/MESI", "", 100.0), run("cs", "b.T/MESI", "", 50.0)];
        let new = vec![run("nq", "b.T/MESI", "", 100.0), run("mt", "b.T/MESI", "", 70.0)];
        let d = diff(&base, &new);
        assert_eq!((d.common, d.missing), (1, 2));
        // One matched row plus one missing row per side, all in the table.
        assert_eq!(d.rows.len(), 3);
        let missing: Vec<_> = d.rows.iter().filter(|r| r[5] == "missing").collect();
        assert_eq!(missing.len(), 2);
        assert!(missing.iter().any(|r| r[0] == "cs" && r[4] == "—"));
        assert!(missing.iter().any(|r| r[0] == "mt" && r[3] == "—"));
    }

    #[test]
    fn policy_is_part_of_the_match_key() {
        // Same (app, setup) under two policies must not cross-match: the
        // locked baseline would otherwise silently absorb the fence-free
        // cell's cycles.
        let base = vec![run("nq", "b.T/MESI", "locked", 100.0)];
        let new =
            vec![run("nq", "b.T/MESI", "locked", 100.0), run("nq", "b.T/MESI", "fence-free", 90.0)];
        let d = diff(&base, &new);
        assert_eq!((d.common, d.missing), (1, 1));
        assert_eq!(d.worst, 0.0);
    }

    #[test]
    fn pre_policy_documents_still_match_one_to_one() {
        let base = vec![run("nq", "b.T/MESI", "", 100.0)];
        let new = vec![run("nq", "b.T/MESI", "", 110.0)];
        let d = diff(&base, &new);
        assert_eq!((d.common, d.missing), (1, 0));
        assert!((d.worst - 10.0).abs() < 1e-9);
    }
}
