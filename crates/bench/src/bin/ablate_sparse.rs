//! Ablation: Ligra's dense-only traversal (what the paper's evaluation
//! measures) vs the hybrid sparse/dense `edge_map_auto` extension, on BFS —
//! sparse iteration pays off when frontiers are small relative to the graph.

use std::sync::Arc;

use bigtiny_apps::graph::Graph;
use bigtiny_apps::ligra::{edge_map, edge_map_auto, VertexSubset};
use bigtiny_bench::{render_table, Setup};
use bigtiny_core::run_task_parallel;
use bigtiny_engine::{AddrSpace, Protocol, RacyTag, ShVec};

const UNVISITED: u64 = u64::MAX;

fn bfs_run(setup: &Setup, n: usize, ef: usize, auto: bool) -> (u64, u64) {
    let mut space = AddrSpace::new();
    let g = Arc::new(Graph::rmat(&mut space, n, ef, 0xbf5));
    let n = g.num_vertices();
    let src = g.first_nonisolated();
    let parent = Arc::new(ShVec::new(&mut space, n, UNVISITED));
    parent.host_write(src, src as u64);
    let cur = Arc::new(VertexSubset::new(&mut space, n));
    let nxt = Arc::new(VertexSubset::new(&mut space, n));
    cur.host_insert(src);

    let g2 = Arc::clone(&g);
    let p0 = Arc::clone(&parent);
    let run = run_task_parallel(&setup.sys, &setup.rt, &mut space, move |cx| {
        let mut cur = cur;
        let mut nxt = nxt;
        loop {
            let (pc, pu) = (Arc::clone(&p0), Arc::clone(&p0));
            // Benign race (LigraCondProbe): stale probe; the CAS decides.
            let cond = move |cx: &mut bigtiny_core::TaskCx<'_>, d: usize| {
                pc.read_racy(cx.port(), d, RacyTag::LigraCondProbe) == UNVISITED
            };
            let update = move |cx: &mut bigtiny_core::TaskCx<'_>, s: usize, d: usize, _| {
                pu.cas(cx.port(), d, UNVISITED, s as u64)
            };
            if auto {
                edge_map_auto(cx, &g2, &cur, &nxt, 128, cond, update);
            } else {
                edge_map(cx, &g2, &cur, &nxt, 128, cond, update);
            }
            if nxt.count(cx) == 0 {
                break;
            }
            std::mem::swap(&mut cur, &mut nxt);
            nxt.par_clear(cx, 128);
        }
    });
    assert_eq!(run.report.stale_reads, 0);
    // Sanity: reachable set is nonempty beyond the source.
    assert!(parent.snapshot().iter().filter(|p| **p != UNVISITED).count() > 1);
    (run.report.completion_cycles, run.report.total_instructions())
}

fn main() {
    let header: Vec<String> = [
        "Config",
        "graph",
        "dense cycles",
        "auto cycles",
        "auto/dense",
        "dense insts",
        "auto insts",
    ]
    .map(String::from)
    .to_vec();
    let mut rows = Vec::new();
    for setup in [Setup::bt_mesi(), Setup::bt_hcc(Protocol::GpuWb, true)] {
        for (n, ef) in [(4096usize, 8usize), (16384, 4)] {
            let (dc, di) = bfs_run(&setup, n, ef, false);
            let (ac, ai) = bfs_run(&setup, n, ef, true);
            eprintln!("[ablate_sparse] {} n={n}", setup.label);
            rows.push(vec![
                setup.label.clone(),
                format!("rmat-{n}x{ef}"),
                dc.to_string(),
                ac.to_string(),
                format!("{:.3}", ac as f64 / dc as f64),
                di.to_string(),
                ai.to_string(),
            ]);
        }
    }
    println!("Dense vs hybrid sparse/dense edge_map (BFS)\n");
    println!("{}", render_table(&header, &rows));
    println!("Expected: auto <= dense, with the gap widening on larger, sparser graphs");
    println!("(small frontiers dominate more of the BFS rounds).");
}
