//! Structural smoke test for the observability layer, runnable in CI
//! without a browser.
//!
//! Runs one DTS kernel twice — observability off, then fully armed
//! (per-core tracing + task-event recording) — and checks that:
//!
//! * arming observability is bit-for-bit invisible to simulation (same
//!   completion cycles and sequenced-op-stream hash);
//! * the Chrome trace-event export validates structurally (balanced async
//!   pairs, 1:1 flow ids) and contains core spans, task lifetimes, steal
//!   instants, and ULI flow arrows;
//! * the metrics document contains every section and survives its own
//!   strict parser.
//!
//! `--metrics-out PATH` / `--trace-out PATH` additionally write the
//! validated documents, so CI can upload them as artifacts.

use bigtiny_apps::{app_by_name, AppSize};
use bigtiny_bench::{run_app, Setup};
use bigtiny_engine::Protocol;
use bigtiny_obs::{
    export_chrome_trace, metrics_document, parse_json, validate_chrome_trace, RunMetrics, TraceRun,
    METRICS_SCHEMA,
};

const USAGE: &str = "usage: trace_smoke [--metrics-out PATH] [--trace-out PATH]";

fn main() {
    let mut metrics_out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value\n{USAGE}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--metrics-out" => metrics_out = Some(value("--metrics-out")),
            "--trace-out" => trace_out = Some(value("--trace-out")),
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                std::process::exit(2);
            }
        }
    }

    let app = app_by_name("cilk5-nq").expect("cilk5-nq registered");
    let plain_setup = Setup::bt_hcc(Protocol::GpuWb, true);
    let mut armed_setup = plain_setup.clone();
    armed_setup.sys.trace = true;
    armed_setup.sys.attr = true;
    armed_setup.rt.record_task_events = true;

    let plain = run_app(&plain_setup, &app, AppSize::Test, 0);
    let armed = run_app(&armed_setup, &app, AppSize::Test, 0);

    // Zero-overhead pin: arming the whole observability stack must not move
    // a single simulated cycle or grant.
    assert_eq!(
        (plain.cycles, plain.run.report.seq_op_hash),
        (armed.cycles, armed.run.report.seq_op_hash),
        "arming observability perturbed simulated results"
    );
    println!(
        "[trace_smoke] zero-overhead pin holds: {} cycles, op hash {:#018x}",
        armed.cycles, armed.run.report.seq_op_hash
    );

    // Perfetto export: structurally valid and non-trivially populated.
    let trace_doc =
        export_chrome_trace(&[TraceRun { app: armed.app, setup: &armed.setup, run: &armed.run }]);
    let s = validate_chrome_trace(&trace_doc)
        .unwrap_or_else(|e| panic!("exported trace fails structural validation: {e}"));
    assert!(s.complete > 0, "no core spans in the trace");
    assert!(s.async_pairs > 0, "no task lifetimes in the trace");
    assert!(s.flows > 0, "no ULI flow arrows in the trace (DTS steals expected)");
    assert!(
        s.instants as u64 >= armed.run.stats.steals,
        "fewer steal instants ({}) than steals ({})",
        s.instants,
        armed.run.stats.steals
    );
    let trace_text = trace_doc.to_json();
    let reparsed = parse_json(&trace_text).expect("trace survives the strict parser");
    assert_eq!(validate_chrome_trace(&reparsed).unwrap(), s, "trace mutated by round trip");
    println!(
        "[trace_smoke] trace valid: {} spans, {} task lifetimes, {} flows, {} steal instants",
        s.complete, s.async_pairs, s.flows, s.instants
    );

    // Metrics document: every section present, strict round trip.
    let metrics_doc = metrics_document(&[RunMetrics {
        app: armed.app,
        setup: &armed.setup,
        deque_policy: armed.deque_policy,
        run: &armed.run,
        tiny_cores: &armed.tiny_cores,
    }]);
    let metrics_text = metrics_doc.to_json();
    let back = parse_json(&metrics_text).expect("metrics survive the strict parser");
    assert_eq!(back.get("schema").and_then(|s| s.as_str()), Some(METRICS_SCHEMA));
    let run0 = &back.get("runs").and_then(|r| r.as_arr()).expect("runs array")[0];
    let sections =
        ["breakdown", "coherence", "mesh", "uli", "faults", "watchdog", "steals", "critpath"];
    for section in sections {
        assert!(run0.get(section).is_some(), "metrics document missing section {section}");
    }
    assert!(
        run0.get("steals").unwrap().get("attempts").unwrap().as_num().unwrap() > 0.0,
        "DTS run recorded no steal attempts"
    );
    // With attribution armed the critical-path profile must be live: the
    // conservation table holds and the burdened span is positive.
    let cp = run0.get("critpath").expect("critpath section");
    assert_eq!(cp.get("profiled").map(|p| p.to_json()), Some("true".into()), "run not profiled");
    assert!(cp.get("span").unwrap().as_num().unwrap() > 0.0, "profiled run has a zero span");
    assert_eq!(
        cp.get("conservation").unwrap().get("holds").map(|h| h.to_json()),
        Some("true".into()),
        "cycle-conservation invariant violated"
    );
    println!("[trace_smoke] metrics valid: schema {METRICS_SCHEMA}, all sections present");

    if let Some(path) = &metrics_out {
        std::fs::write(path, metrics_text + "\n")
            .unwrap_or_else(|e| panic!("--metrics-out {path}: {e}"));
        println!("[trace_smoke] metrics -> {path}");
    }
    if let Some(path) = &trace_out {
        std::fs::write(path, trace_text + "\n")
            .unwrap_or_else(|e| panic!("--trace-out {path}: {e}"));
        println!("[trace_smoke] trace -> {path} (load in ui.perfetto.dev)");
    }
    println!("[trace_smoke] OK");
}
