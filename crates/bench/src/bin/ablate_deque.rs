//! Deque-policy ablation: where do the AMO/fence cycles go?
//!
//! Sweeps the four deque policies (locked, Chase-Lev, fence-free with
//! multiplicity, idempotent) on the hardware-coherent baseline, next to
//! the HCC and HCC-DTS configurations (whose runtimes always use the
//! locked deque protocol — DTS is the *hardware* route to the same AMO
//! savings the software policies chase). Every cell reports the
//! critical-path profiler's cycle-conservation buckets, so the table
//! answers directly how many core-cycles each policy spends on atomics,
//! invalidations, flushes, and steal protocol.
//!
//! Correctness is gated, not assumed:
//!
//! * every run passes kernel verification and the zero-stale-reads
//!   invariant (`run_app` panics otherwise);
//! * the cycle-conservation identity must hold exactly on every cell;
//! * multiplicity cells (fence-free / idempotent) run the task-event
//!   audit in `Multiplicity` mode — at-most-twice, thief-primary,
//!   duplicate-safe kernel — and two forced-duplicate cells (a `DupTask`
//!   mutation on each multiplicity policy) prove the audit passes with
//!   duplicates *actually present*, so "no duplicates happened to occur"
//!   can never masquerade as "duplicates are safe".
//!
//! `--metrics-out PATH` writes the v3 metrics document (per-run
//! `deque_policy` label + `steals.lifecycle.duplicate_executions`); CI
//! diffs it against the committed `results/metrics_deque_test.json` at
//! threshold 0.

use bigtiny_apps::app_by_name;
use bigtiny_bench::{render_table, run_app, size_from_env, Setup};
use bigtiny_checker::{audit_task_events_mode, kernel_is_duplicate_safe, AuditMode};
use bigtiny_core::{DequeKind, Mutation, MutationKind, RuntimeKind};
use bigtiny_engine::Protocol;
use bigtiny_obs::{metrics_document, CycleConservation, RunMetrics};

const USAGE: &str = "usage: ablate_deque [--metrics-out PATH]
  --metrics-out PATH  write the v3 metrics document for the whole sweep
size comes from BIGTINY_SIZE (test|eval|large)";

/// The kernel set: every member must be duplicate-safe, because the
/// multiplicity policies may re-execute a completed task. The main
/// asserts this against the checker's whitelist so the two lists cannot
/// drift apart.
const KERNELS: [&str; 6] =
    ["cilk5-cs", "cilk5-mt", "ligra-bf", "ligra-bfs", "ligra-cc", "ligra-tc"];

/// One sweep cell: a setup plus whether a `DupTask` mutation is armed.
struct Cell {
    setup: Setup,
    dup_injected: bool,
}

fn cells() -> Vec<Cell> {
    let mut v = Vec::new();
    let mesi = |suffix: &str, kind: DequeKind, dup: bool| -> Cell {
        let mut s = Setup::bt_mesi();
        s.rt.deque_kind = kind;
        s.rt.record_task_events = true;
        s.label.push_str(suffix);
        if dup {
            // Re-execute the task claimed by core 0's first clean local
            // pop: the root spawns there, so the duplicate always lands.
            s.rt.mutation = Some(Mutation { kind: MutationKind::DupTask, core: 0, nth: 0 });
        }
        Cell { setup: s, dup_injected: dup }
    };
    v.push(mesi("", DequeKind::Locked, false));
    v.push(mesi("-cl", DequeKind::ChaseLev, false));
    v.push(mesi("-ff", DequeKind::FenceFree, false));
    v.push(mesi("-idem", DequeKind::Idempotent, false));
    // The hardware alternatives, DTS off and on (locked deque protocol).
    for dts in [false, true] {
        let mut s = Setup::bt_hcc(Protocol::DeNovo, dts);
        s.rt.record_task_events = true;
        v.push(Cell { setup: s, dup_injected: false });
    }
    // Forced-duplicate audit cells, one per multiplicity policy.
    v.push(mesi("-ff-dup", DequeKind::FenceFree, true));
    v.push(mesi("-idem-dup", DequeKind::Idempotent, true));
    v
}

fn main() {
    let mut metrics_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--metrics-out" => {
                metrics_out = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--metrics-out needs a value\n{USAGE}");
                    std::process::exit(2);
                }));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                std::process::exit(2);
            }
        }
    }

    let size = size_from_env();
    for k in KERNELS {
        assert!(
            kernel_is_duplicate_safe(k),
            "{k} is in the ablation kernel set but not on DUPLICATE_SAFE_KERNELS"
        );
    }
    let cells = cells();

    println!("Deque-policy ablation ({size:?} inputs, {} kernels x {} cells)\n", KERNELS.len(), {
        cells.len()
    });

    let mut results = Vec::new();
    let mut rows = Vec::new();
    let mut failures = 0usize;
    for name in KERNELS {
        let app = app_by_name(name).expect("registered kernel");
        for cell in &cells {
            let r = run_app(&cell.setup, &app, size, 0);

            let cons = CycleConservation::from_report(&r.run.report);
            if !cons.holds() {
                eprintln!(
                    "[ablate_deque] FAIL {name} @ {}: conservation broken: buckets {} != {}",
                    r.setup,
                    cons.bucket_sum(),
                    cons.total_core_cycles
                );
                failures += 1;
            }

            // The policy's execution contract, checked on the recorded
            // task events: exactly-once everywhere except the
            // multiplicity policies, which get the at-most-twice audit.
            let multiplicity = cell.setup.rt.kind == RuntimeKind::Baseline
                && cell.setup.rt.deque_kind.multiplicity();
            let mode = if multiplicity {
                AuditMode::Multiplicity { crash_armed: false }
            } else {
                AuditMode::ExactlyOnce
            };
            let audit = audit_task_events_mode(&r.run.task_events, mode, name);
            if !audit.is_clean() {
                eprintln!("[ablate_deque] FAIL {name} @ {}: audit:\n{}", r.setup, audit.render());
                failures += 1;
            }
            let dups = r.run.stats.duplicate_executions;
            if cell.dup_injected && dups == 0 {
                eprintln!(
                    "[ablate_deque] FAIL {name} @ {}: DupTask armed but no duplicate ran",
                    r.setup
                );
                failures += 1;
            }
            if !multiplicity && dups > 0 {
                eprintln!(
                    "[ablate_deque] FAIL {name} @ {}: {dups} duplicates under an \
                     exactly-once policy",
                    r.setup
                );
                failures += 1;
            }

            rows.push(vec![
                name.to_owned(),
                r.setup.clone(),
                r.deque_policy.to_owned(),
                r.cycles.to_string(),
                cons.amo.to_string(),
                cons.invalidate.to_string(),
                cons.flush.to_string(),
                cons.steal_protocol.to_string(),
                cons.idle.to_string(),
                r.tiny_mem().amos.to_string(),
                dups.to_string(),
            ]);
            results.push(r);
        }
    }

    let header: Vec<String> = [
        "App",
        "Config",
        "policy",
        "cycles",
        "amo-cyc",
        "inval-cyc",
        "flush-cyc",
        "steal-cyc",
        "idle-cyc",
        "AMOs",
        "dups",
    ]
    .map(String::from)
    .to_vec();
    println!("{}", render_table(&header, &rows));

    // Per-policy totals over the MESI cells: the headline "where do the
    // AMO cycles go" comparison, software policies against each other and
    // against the DTS hardware route.
    {
        let mut totals: Vec<(String, u64, u64, u64, u64)> = Vec::new();
        for r in &results {
            // Forced-dup cells are audit fixtures, not comparison points.
            if r.setup.ends_with("-dup") {
                continue;
            }
            let cons = CycleConservation::from_report(&r.run.report);
            let key = format!("{} [{}]", r.setup.split('-').next().unwrap_or(&r.setup), {
                r.deque_policy
            });
            let key = if r.setup.contains("DTS") {
                format!("{} +DTS", key)
            } else if r.setup.contains("HCC") {
                format!("{} -DTS", key)
            } else {
                key
            };
            match totals.iter_mut().find(|(k, ..)| *k == key) {
                Some(t) => {
                    t.1 += r.cycles;
                    t.2 += cons.amo;
                    t.3 += r.tiny_mem().amos;
                    t.4 += r.run.stats.duplicate_executions;
                }
                None => totals.push((
                    key,
                    r.cycles,
                    cons.amo,
                    r.tiny_mem().amos,
                    r.run.stats.duplicate_executions,
                )),
            }
        }
        let header: Vec<String> =
            ["Policy cell", "sum cycles", "sum amo-cyc", "sum AMOs", "sum dups"]
                .map(String::from)
                .to_vec();
        let rows: Vec<Vec<String>> = totals
            .iter()
            .map(|(k, cyc, amo, amos, dups)| {
                vec![k.clone(), cyc.to_string(), amo.to_string(), amos.to_string(), {
                    dups.to_string()
                }]
            })
            .collect();
        println!("Per-policy totals over the kernel set\n{}", render_table(&header, &rows));
    }

    if let Some(path) = &metrics_out {
        let runs: Vec<RunMetrics<'_>> = results
            .iter()
            .map(|r| RunMetrics {
                app: r.app,
                setup: &r.setup,
                deque_policy: r.deque_policy,
                run: &r.run,
                tiny_cores: &r.tiny_cores,
            })
            .collect();
        let doc = metrics_document(&runs);
        std::fs::write(path, doc.to_json() + "\n")
            .unwrap_or_else(|e| panic!("--metrics-out {path}: {e}"));
        println!("[ablate_deque] metrics document ({} runs) -> {path}", results.len());
    }

    if failures > 0 {
        eprintln!("[ablate_deque] FAIL: {failures} gate(s) tripped");
        std::process::exit(1);
    }
    println!("[ablate_deque] OK: {} runs, all conservation + audit gates clean", results.len());
}
