//! Table III: the headline results table — per-kernel work/span analysis
//! plus speedups of every simulated configuration.
//!
//! Columns mirror the paper: work, span, logical parallelism, and
//! instructions-per-task from the runtime's Cilkview-style profiler;
//! speedup over a serial in-order core for `O3x{1,4,8}` and `b.T/MESI`;
//! and speedup relative to `b.T/MESI` for the HCC and HCC-DTS
//! configurations.

use bigtiny_bench::{
    apps_from_env, find_result, geomean, render_table, run_matrix, size_from_env, Setup,
};

fn main() {
    let size = size_from_env();
    let apps = apps_from_env();

    let mut setups = vec![Setup::serial_io(), Setup::o3(1), Setup::o3(4), Setup::o3(8)];
    setups.extend(Setup::big_tiny_matrix());
    let results = run_matrix(&setups, &apps, size);

    let header: Vec<String> = [
        "Name", "DInst", "Work", "Span", "Para", "IPT", // Cilkview-style columns
        "O3x1", "O3x4", "O3x8", "b.T/MESI", // speedup over serial IO
        "dnv", "gwt", "gwb", // HCC vs b.T/MESI
        "DTS-dnv", "DTS-gwt", "DTS-gwb", // HCC+DTS vs b.T/MESI
    ]
    .map(String::from)
    .to_vec();

    let mut rows = Vec::new();
    let mut geo: Vec<Vec<f64>> = vec![Vec::new(); 10];
    for app in &apps {
        let serial = find_result(&results, app.name, "serial-io").cycles as f64;
        let mesi = find_result(&results, app.name, "b.T/MESI");
        let mesi_cycles = mesi.cycles as f64;
        let ws = mesi.run.stats.workspan;

        let over_serial =
            |label: &str| serial / find_result(&results, app.name, label).cycles as f64;
        let vs_mesi =
            |label: &str| mesi_cycles / find_result(&results, app.name, label).cycles as f64;

        let cols = [
            over_serial("O3x1"),
            over_serial("O3x4"),
            over_serial("O3x8"),
            over_serial("b.T/MESI"),
            vs_mesi("b.T/HCC-dnv"),
            vs_mesi("b.T/HCC-gwt"),
            vs_mesi("b.T/HCC-gwb"),
            vs_mesi("b.T/HCC-DTS-dnv"),
            vs_mesi("b.T/HCC-DTS-gwt"),
            vs_mesi("b.T/HCC-DTS-gwb"),
        ];
        for (g, v) in geo.iter_mut().zip(cols) {
            g.push(v);
        }
        let dinst: u64 = mesi.run.report.total_instructions();
        rows.push(vec![
            app.name.to_owned(),
            format!("{:.2}M", dinst as f64 / 1e6),
            format!("{:.2}M", ws.work as f64 / 1e6),
            format!("{:.1}K", ws.span as f64 / 1e3),
            format!("{:.1}", ws.parallelism()),
            format!("{:.0}", ws.instructions_per_task()),
            format!("{:.2}", cols[0]),
            format!("{:.2}", cols[1]),
            format!("{:.2}", cols[2]),
            format!("{:.2}", cols[3]),
            format!("{:.2}", cols[4]),
            format!("{:.2}", cols[5]),
            format!("{:.2}", cols[6]),
            format!("{:.2}", cols[7]),
            format!("{:.2}", cols[8]),
            format!("{:.2}", cols[9]),
        ]);
    }
    let mut geo_row = vec![
        "geomean".to_owned(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
    ];
    geo_row.extend(geo.iter().map(|g| format!("{:.2}", geomean(g.iter().copied()))));
    rows.push(geo_row);

    println!("Table III: Simulated Application Kernels ({size:?} inputs)\n");
    println!(
        "Speedups: O3x* and b.T/MESI over serial-IO; protocol columns relative to b.T/MESI.\n"
    );
    println!("{}", render_table(&header, &rows));
}
