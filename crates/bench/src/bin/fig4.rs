//! Figure 4: speedup and logical parallelism of `ligra-tc` versus task
//! granularity on a 64-tiny-core system.

use bigtiny_apps::app_by_name;
use bigtiny_bench::{render_table, run_app, size_from_env, Setup};
use bigtiny_core::RuntimeConfig;
use bigtiny_engine::{Protocol, SystemConfig};

fn main() {
    let size = size_from_env();
    let tc = app_by_name("ligra-tc").expect("ligra-tc registered");

    let serial = Setup::serial_io();
    let serial_cycles = run_app(&serial, &tc, size, 0).cycles as f64;

    let sixty_four_tiny = Setup {
        label: "tiny64/mesi".to_owned(),
        sys: SystemConfig::tiny_only(64, Protocol::Mesi),
        rt: RuntimeConfig::new(bigtiny_core::RuntimeKind::Baseline),
    };

    let header: Vec<String> =
        ["Task Granularity", "Speedup over serial", "Logical Parallelism", "Tasks", "IPT"]
            .map(String::from)
            .to_vec();
    let mut rows = Vec::new();
    for grain in [4usize, 8, 16, 32, 64, 128, 256] {
        let r = run_app(&sixty_four_tiny, &tc, size, grain);
        let ws = r.run.stats.workspan;
        eprintln!("[fig4] grain {grain}: {} cycles", r.cycles);
        rows.push(vec![
            grain.to_string(),
            format!("{:.2}", serial_cycles / r.cycles as f64),
            format!("{:.1}", ws.parallelism()),
            ws.tasks.to_string(),
            format!("{:.0}", ws.instructions_per_task()),
        ]);
    }
    println!("Figure 4: ligra-tc on 64 tiny cores, granularity sweep ({size:?} inputs)\n");
    println!("{}", render_table(&header, &rows));
    println!("Expected shape: speedup peaks at a moderate granularity; parallelism falls as tasks coarsen.");
}
