//! Table II: simulated-system configuration, printed from the live
//! `SystemConfig`/`MemConfig` values.

use bigtiny_engine::{CoreKind, SystemConfig};

fn main() {
    let cfg = SystemConfig::big_tiny_mesi();
    let mem = cfg.mem_config();
    let topo = cfg.topology();
    let big = cfg.cores.iter().find(|c| c.kind == CoreKind::Big).expect("has big cores");
    let tiny = cfg.cores.iter().find(|c| c.kind == CoreKind::Tiny).expect("has tiny cores");

    println!("Table II: Simulator Configuration ({})\n", cfg.name);
    println!(
        "Tiny Core     single-issue in-order, 1 IPC non-memory; L1D: {} KB, {}-way, 1-cycle hit",
        tiny.mem.l1_bytes / 1024,
        tiny.mem.l1_ways
    );
    println!(
        "Big Core      {}-wide out-of-order (memory stall / {}); L1D: {} KB, {}-way, 1-cycle hit",
        cfg.big_issue_width,
        cfg.big_overlap_div,
        big.mem.l1_bytes / 1024,
        big.mem.l1_ways
    );
    println!(
        "L2 Cache      shared, {}-way, {} banks x {} KB (one bank per mesh column)",
        mem.l2_ways,
        topo.num_banks(),
        mem.l2_bank_bytes / 1024
    );
    println!(
        "OCN           {}x{} mesh, XY routing, 16 B flits, 1-cycle channel + 1-cycle router",
        topo.rows(),
        topo.cols()
    );
    println!(
        "Main Memory   {} DRAM controllers (one per column), {}-cycle access, {} cycles/line occupancy",
        topo.num_banks(),
        mem.dram_latency,
        mem.dram_cycles_per_line
    );
    println!(
        "Cores         {} total: {} big + {} tiny; ULI interrupt cost {} (tiny) / {} (big) cycles",
        cfg.num_cores(),
        cfg.num_big(),
        cfg.tiny_cores().len(),
        cfg.uli_cost_tiny,
        cfg.uli_cost_big
    );
}
