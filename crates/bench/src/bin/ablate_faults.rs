//! Robustness ablation: each named fault plan against the DTS runtime, per
//! kernel, reporting the cycle overhead over the fault-free run and what the
//! hardened retry paths actually did (injected faults, response timeouts,
//! shared-memory fallback steals).
//!
//! `BIGTINY_SIZE` / `BIGTINY_APPS` / `BIGTINY_JSON` work as in `eval_all`;
//! `BIGTINY_FAULT_SEED` overrides the plan seed (default 1).

use bigtiny_bench::{apps_from_env, find_result, render_table, run_matrix, size_from_env, Setup};
use bigtiny_core::{RuntimeConfig, RuntimeKind};
use bigtiny_engine::{FaultPlan, Protocol, SystemConfig};
use bigtiny_mesh::{MeshConfig, Topology};

const PLANS: [&str; 5] =
    ["none", "uli-drop-storm", "steal-miss-storm", "mesh-latency-spikes", "hostile"];

fn main() {
    let size = size_from_env();
    let apps = apps_from_env();
    let seed: u64 =
        std::env::var("BIGTINY_FAULT_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(1);

    let base = SystemConfig::big_tiny(
        "ablate-faults",
        MeshConfig::with_topology(Topology::new(4, 4)),
        1,
        15,
        Protocol::GpuWb,
    );
    let setups: Vec<Setup> = PLANS
        .iter()
        .map(|plan| Setup {
            label: (*plan).to_owned(),
            sys: base.clone().with_faults(FaultPlan::by_name(plan, seed).unwrap()),
            rt: RuntimeConfig::new(RuntimeKind::Dts),
        })
        .collect();
    let results = run_matrix(&setups, &apps, size);

    let header: Vec<String> = [
        "Name",
        "Plan",
        "Cycles",
        "Overhead",
        "Injected",
        "MeshSpikes",
        "UliTimeouts",
        "Fallbacks",
        "Steals",
    ]
    .map(String::from)
    .to_vec();
    let mut rows = Vec::new();
    for app in &apps {
        let clean = find_result(&results, app.name, "none").cycles.max(1) as f64;
        for plan in PLANS {
            let r = find_result(&results, app.name, plan);
            rows.push(vec![
                app.name.to_owned(),
                plan.to_owned(),
                r.cycles.to_string(),
                format!("{:+.1}%", 100.0 * (r.cycles as f64 / clean - 1.0)),
                r.run.report.fault_counters.total().to_string(),
                r.run.report.mesh_fault_spikes.to_string(),
                r.run.stats.uli_timeouts.to_string(),
                r.run.stats.fallback_steals.to_string(),
                r.run.stats.steals.to_string(),
            ]);
        }
    }
    println!("== Fault-plan ablation: DTS on 16-core b.T/gwb, seed {seed:#x} ({size:?}) ==\n");
    println!("{}", render_table(&header, &rows));
    println!(
        "Every run above completed and verified functionally; `none` is the\n\
         bit-for-bit golden path (hardened retry protocols disabled)."
    );
}
