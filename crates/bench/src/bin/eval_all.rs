//! Runs the 13-kernel × 7-configuration big.TINY matrix once and emits the
//! data for Figures 5, 6, 7, 8 and Table IV in one pass (the standalone
//! binaries re-run the matrix; this one is for full reproduction runs).

use bigtiny_bench::{
    apps_from_env, breakdown_labels, find_result, geomean, render_table, run_matrix,
    size_from_env, Setup, TrafficClass,
};
use bigtiny_engine::Protocol;

const CLASSES: [TrafficClass; 9] = [
    TrafficClass::CpuReq,
    TrafficClass::WbReq,
    TrafficClass::DataResp,
    TrafficClass::SyncReq,
    TrafficClass::SyncResp,
    TrafficClass::CohReq,
    TrafficClass::CohResp,
    TrafficClass::DramReq,
    TrafficClass::DramResp,
];

fn main() {
    let size = size_from_env();
    let apps = apps_from_env();
    let setups = Setup::big_tiny_matrix();
    let results = run_matrix(&setups, &apps, size);

    // ---------------- Figure 5 ----------------
    {
        let labels: Vec<String> = setups.iter().skip(1).map(|s| s.label.clone()).collect();
        let mut header = vec!["Name".to_owned()];
        header.extend(labels.iter().cloned());
        let mut rows = Vec::new();
        let mut geo: Vec<Vec<f64>> = vec![Vec::new(); labels.len()];
        for app in &apps {
            let mesi = find_result(&results, app.name, "b.T/MESI").cycles as f64;
            let mut row = vec![app.name.to_owned()];
            for (i, label) in labels.iter().enumerate() {
                let v = mesi / find_result(&results, app.name, label).cycles as f64;
                geo[i].push(v);
                row.push(format!("{v:.2}"));
            }
            rows.push(row);
        }
        let mut geo_row = vec!["geomean".to_owned()];
        geo_row.extend(geo.iter().map(|g| format!("{:.2}", geomean(g.iter().copied()))));
        rows.push(geo_row);
        println!("== Figure 5: speedup over big.TINY/MESI ({size:?}) ==\n");
        println!("{}", render_table(&header, &rows));
    }

    // ---------------- Figure 6 ----------------
    {
        let mut header = vec!["Name".to_owned()];
        header.extend(setups.iter().map(|s| s.label.clone()));
        let mut rows = Vec::new();
        for app in &apps {
            let mut row = vec![app.name.to_owned()];
            for setup in &setups {
                let r = find_result(&results, app.name, &setup.label);
                row.push(format!("{:.1}%", 100.0 * r.l1d_hit_rate()));
            }
            rows.push(row);
        }
        println!("== Figure 6: tiny-core L1D hit rate ({size:?}) ==\n");
        println!("{}", render_table(&header, &rows));
    }

    // ---------------- Figure 7 ----------------
    {
        let mut header = vec!["Name".to_owned(), "Config".to_owned()];
        header.extend(breakdown_labels().map(String::from));
        header.push("Total".to_owned());
        let mut rows = Vec::new();
        for app in &apps {
            let mesi_total =
                find_result(&results, app.name, "b.T/MESI").tiny_breakdown().total().max(1) as f64;
            for setup in &setups {
                let r = find_result(&results, app.name, &setup.label);
                let b = r.tiny_breakdown();
                let mut row = vec![app.name.to_owned(), setup.label.clone()];
                for (_, cycles) in b.paper_groups() {
                    row.push(format!("{:.3}", cycles as f64 / mesi_total));
                }
                row.push(format!("{:.3}", b.total() as f64 / mesi_total));
                rows.push(row);
            }
        }
        println!("== Figure 7: tiny-core time breakdown, normalized to b.T/MESI ({size:?}) ==\n");
        println!("{}", render_table(&header, &rows));
    }

    // ---------------- Figure 8 ----------------
    {
        let mut header = vec!["Name".to_owned(), "Config".to_owned()];
        header.extend(CLASSES.iter().map(|c| c.label().to_owned()));
        header.push("total".to_owned());
        let mut rows = Vec::new();
        for app in &apps {
            let mesi_total =
                find_result(&results, app.name, "b.T/MESI").traffic_bytes().max(1) as f64;
            for setup in &setups {
                let r = find_result(&results, app.name, &setup.label);
                let t = &r.run.report.traffic;
                let mut row = vec![app.name.to_owned(), setup.label.clone()];
                for c in CLASSES {
                    row.push(format!("{:.3}", t.bytes(c) as f64 / mesi_total));
                }
                row.push(format!("{:.3}", r.traffic_bytes() as f64 / mesi_total));
                rows.push(row);
            }
        }
        println!("== Figure 8: OCN traffic by category, normalized to b.T/MESI ({size:?}) ==\n");
        println!("{}", render_table(&header, &rows));
    }

    // ---------------- Table IV ----------------
    {
        let header: Vec<String> = [
            "App", "InvDec dnv", "InvDec gwt", "InvDec gwb", "FlsDec gwb",
            "HitInc dnv", "HitInc gwt", "HitInc gwb",
        ]
        .map(String::from)
        .to_vec();
        let pct_dec = |hcc: u64, dts: u64| -> String {
            if hcc == 0 {
                "--".to_owned()
            } else {
                format!("{:.2}%", 100.0 * (hcc.saturating_sub(dts)) as f64 / hcc as f64)
            }
        };
        let mut rows = Vec::new();
        for app in &apps {
            let mut row = vec![app.name.to_owned()];
            let mut hit_inc = Vec::new();
            let mut fls_dec = String::new();
            for proto in [Protocol::DeNovo, Protocol::GpuWt, Protocol::GpuWb] {
                let hcc = find_result(&results, app.name, &format!("b.T/HCC-{}", proto.label()));
                let dts = find_result(&results, app.name, &format!("b.T/HCC-DTS-{}", proto.label()));
                let (mh, md) = (hcc.tiny_mem(), dts.tiny_mem());
                row.push(pct_dec(mh.lines_invalidated, md.lines_invalidated));
                if proto == Protocol::GpuWb {
                    fls_dec = pct_dec(mh.lines_flushed, md.lines_flushed);
                }
                hit_inc.push(format!("{:.2}%", 100.0 * (dts.l1d_hit_rate() - hcc.l1d_hit_rate())));
            }
            row.push(fls_dec);
            row.extend(hit_inc);
            rows.push(row);
        }
        println!("== Table IV: DTS vs HCC reductions ({size:?}) ==\n");
        println!("{}", render_table(&header, &rows));
    }

    // ---------------- ULI overhead summary (Section VI-C claims) ----------
    {
        println!("== ULI network summary (DTS configurations) ==\n");
        for app in &apps {
            for proto in [Protocol::DeNovo, Protocol::GpuWt, Protocol::GpuWb] {
                let r = find_result(&results, app.name, &format!("b.T/HCC-DTS-{}", proto.label()));
                let u = &r.run.report.uli;
                println!(
                    "{:<12} {:<4} msgs {:>8}  nacks {:>6}  mean hops {:>5.1}  mean lat {:>6.1}  util {:>6.3}%",
                    app.name,
                    proto.label(),
                    u.messages,
                    u.nacks,
                    u.mean_hops,
                    u.mean_latency,
                    100.0 * u.utilization
                );
            }
        }
    }
}
