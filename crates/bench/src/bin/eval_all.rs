//! Runs the 13-kernel × 7-configuration big.TINY matrix once and emits the
//! data for Figures 5, 6, 7, 8 and Table IV in one pass (the standalone
//! binaries re-run the matrix; this one is for full reproduction runs).

use bigtiny_bench::live::{
    dump_on_panic, write_blackbox, HeartbeatWriter, DEFAULT_HEARTBEAT_EVERY,
};
use bigtiny_bench::{
    apps_from_env, breakdown_labels, find_result, geomean, render_table, run_matrix_with,
    size_from_env, Setup, TrafficClass,
};
use bigtiny_checker::audit_task_events;
use bigtiny_engine::{backend_label, FaultPlan, Protocol};
use bigtiny_obs::{
    blackbox_from_report, export_chrome_trace, metrics_document, validate_chrome_trace, RunMetrics,
    TraceRun,
};

const CLASSES: [TrafficClass; 9] = [
    TrafficClass::CpuReq,
    TrafficClass::WbReq,
    TrafficClass::DataResp,
    TrafficClass::SyncReq,
    TrafficClass::SyncResp,
    TrafficClass::CohReq,
    TrafficClass::CohResp,
    TrafficClass::DramReq,
    TrafficClass::DramResp,
];

/// Options parsed from the command line (sizes and app lists stay on the
/// `BIGTINY_*` environment variables so existing scripts keep working).
struct CliOpts {
    /// Fault-plan name for `FaultPlan::by_name`. Never implied: without an
    /// explicit `--fault-plan`, no faults are armed (a bare `--fault-seed`
    /// is inert).
    fault_plan: Option<String>,
    fault_seed: u64,
    watchdog_budget: Option<u64>,
    /// Write the unified metrics document (every run's breakdown,
    /// coherence, mesh, fault/watchdog, and steal-telemetry sections) here.
    metrics_out: Option<String>,
    /// Write a Chrome trace-event document (load in `ui.perfetto.dev`)
    /// here; arms per-core tracing and task-event recording on every setup.
    trace_out: Option<String>,
    /// Stream live heartbeat lines (`bigtiny-obs-heartbeat-v1`) here.
    heartbeat_out: Option<String>,
    /// Heartbeat cadence in sequencer grants.
    heartbeat_every: u64,
    /// Write black-box flight-recorder dumps here: crash-time bundles on a
    /// watchdog trip or poison, the first dirty run on a failed crash
    /// audit, and an explicit dump of the last run on clean completion.
    blackbox_out: Option<String>,
    /// Run the 256-core Table V machines instead of the 64-core matrix.
    setups_256: bool,
}

const USAGE: &str = "usage: eval_all [--fault-seed N] [--fault-plan PLAN] [--watchdog-budget N]
                [--metrics-out PATH] [--trace-out PATH] [--heartbeat-out PATH]
                [--heartbeat-every N] [--blackbox-out PATH] [--setups-256]
  --fault-seed N       seed for deterministic fault injection; inert unless
                       --fault-plan is also given (no plan is ever implied)
  --fault-plan PLAN    arm fault injection: a named plan (none,
                       uli-drop-storm, steal-miss-storm,
                       mesh-latency-spikes, hostile, crash-one,
                       crash-storm, crash-revive, crash-hostile) or a
                       key=value spec as printed by chaos_fuzz minimal
                       reproducers, e.g. crash_cores=0x20,crash_at=1500.
                       Crash-armed plans also record task events and gate
                       the run on a clean crash-recovery audit
  --watchdog-budget N  abort with per-core diagnostics after N sequenced
                       grants without runtime progress
  --metrics-out PATH   write the unified bigtiny-obs metrics JSON document
                       (one object per (app, setup) run) to PATH
  --trace-out PATH     write a Chrome trace-event JSON document to PATH
                       (arms tracing + task events; load in ui.perfetto.dev)
  --heartbeat-out PATH stream live telemetry to PATH, one JSON line per beat
                       (schema bigtiny-obs-heartbeat-v1; follow with
                       tail_run, validate with json_check)
  --heartbeat-every N  heartbeat cadence in sequencer grants (default 10000)
  --blackbox-out PATH  write black-box flight-recorder dumps to PATH (plus a
                       Perfetto tail trace at PATH.trace.json): a crash-time
                       bundle on watchdog trip or poison, the first dirty
                       run on a failed crash audit, an explicit dump of the
                       last run on clean completion
  --setups-256         run the 256-core Table V machines (b.T-256/MESI,
                       b.T-256/HCC-gwb, b.T-256/HCC-DTS-gwb) instead of
                       the 64-core matrix; combine with BIGTINY_SIZE=test
                       and BIGTINY_BACKEND=sharded for backend smoke runs
sizes and app selection come from BIGTINY_SIZE / BIGTINY_APPS / BIGTINY_JSON";

fn parse_cli() -> CliOpts {
    let mut opts = CliOpts {
        fault_plan: None,
        fault_seed: 1,
        watchdog_budget: None,
        metrics_out: None,
        trace_out: None,
        heartbeat_out: None,
        heartbeat_every: DEFAULT_HEARTBEAT_EVERY,
        blackbox_out: None,
        setups_256: false,
    };
    let mut args = std::env::args().skip(1);
    let mut seed_given = false;
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value\n{USAGE}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--fault-seed" => {
                let v = value("--fault-seed");
                opts.fault_seed = v.parse().unwrap_or_else(|_| {
                    eprintln!("--fault-seed: `{v}` is not a u64\n{USAGE}");
                    std::process::exit(2);
                });
                seed_given = true;
            }
            "--fault-plan" => {
                let v = value("--fault-plan");
                if FaultPlan::parse(&v, 1).is_none() {
                    eprintln!(
                        "--fault-plan: unknown plan `{v}`\n  named plans: {}\n  or a \
                         `key=value,...` spec (FaultPlan::to_spec form), e.g. \
                         crash_cores=0x20,crash_at=1500\n{USAGE}",
                        FaultPlan::NAMES.join(", ")
                    );
                    std::process::exit(2);
                }
                opts.fault_plan = Some(v);
            }
            "--watchdog-budget" => {
                let v = value("--watchdog-budget");
                opts.watchdog_budget = Some(v.parse().unwrap_or_else(|_| {
                    eprintln!("--watchdog-budget: `{v}` is not a u64\n{USAGE}");
                    std::process::exit(2);
                }));
            }
            "--metrics-out" => opts.metrics_out = Some(value("--metrics-out")),
            "--trace-out" => opts.trace_out = Some(value("--trace-out")),
            "--heartbeat-out" => opts.heartbeat_out = Some(value("--heartbeat-out")),
            "--heartbeat-every" => {
                let v = value("--heartbeat-every");
                opts.heartbeat_every = v.parse().ok().filter(|n| *n > 0).unwrap_or_else(|| {
                    eprintln!("--heartbeat-every: `{v}` is not a positive u64\n{USAGE}");
                    std::process::exit(2);
                });
            }
            "--blackbox-out" => opts.blackbox_out = Some(value("--blackbox-out")),
            "--setups-256" => opts.setups_256 = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    if seed_given && opts.fault_plan.is_none() {
        eprintln!(
            "[faults] --fault-seed given without --fault-plan: running fault-free \
             (pass --fault-plan to arm injection)"
        );
    }
    opts
}

fn main() {
    let opts = parse_cli();
    let size = size_from_env();
    let apps = apps_from_env();
    let mut setups = if opts.setups_256 {
        // The Table V machines, smallest-first so the speedup columns
        // (everything vs the leading MESI baseline) keep their meaning.
        vec![
            Setup::bt_256(Protocol::Mesi, bigtiny_core::RuntimeKind::Baseline),
            Setup::bt_256(Protocol::GpuWb, bigtiny_core::RuntimeKind::Hcc),
            Setup::bt_256(Protocol::GpuWb, bigtiny_core::RuntimeKind::Dts),
        ]
    } else {
        Setup::big_tiny_matrix()
    };
    // Every figure normalizes to the leading MESI baseline of whichever
    // matrix is running.
    let mesi_label = setups[0].label.clone();
    let mut crash_armed = false;
    if let Some(plan) = &opts.fault_plan {
        let fp = FaultPlan::parse(plan, opts.fault_seed).expect("plan validated in parse_cli");
        crash_armed = fp.crash_armed();
        for s in &mut setups {
            s.sys = s.sys.clone().with_faults(fp.clone());
            // The crash audit needs the task-lifecycle stream.
            s.rt.record_task_events |= crash_armed;
        }
        println!("[faults] plan={plan} seed={:#x} armed on every configuration", opts.fault_seed);
        if crash_armed {
            println!("[faults] crash dimension armed: task events recorded, audit gated");
        }
    }
    if let Some(budget) = opts.watchdog_budget {
        for s in &mut setups {
            s.sys = s.sys.clone().with_watchdog(budget);
        }
        println!("[watchdog] liveness budget: {budget} sequenced grants without progress");
    }
    if opts.trace_out.is_some() {
        for s in &mut setups {
            s.sys.trace = true;
            s.sys.attr = true;
            s.rt.record_task_events = true;
        }
        println!("[obs] per-core tracing + task events + cycle attribution armed (--trace-out)");
    }
    let heartbeat = opts.heartbeat_out.as_ref().map(|path| {
        let w = HeartbeatWriter::create(path, opts.heartbeat_every)
            .unwrap_or_else(|e| panic!("--heartbeat-out {path}: {e}"));
        println!(
            "[obs] heartbeat armed: one line every {} grants -> {path} \
             (follow with `tail_run {path}`)",
            opts.heartbeat_every
        );
        w
    });
    // A watchdog trip or worker-panic poison unwinds out of the matrix; if
    // a black box was requested, turn the engine's crash-time bundle into a
    // dump before re-raising so the forensics outlive the abort.
    let run_all = || {
        run_matrix_with(&setups, &apps, size, |s, app| {
            if let Some(w) = &heartbeat {
                w.arm(s, app);
            }
        })
    };
    let results = match &opts.blackbox_out {
        None => run_all(),
        Some(path) => match std::panic::catch_unwind(std::panic::AssertUnwindSafe(run_all)) {
            Ok(results) => results,
            Err(panic) => {
                if !dump_on_panic(path) {
                    eprintln!("[blackbox] run aborted before any bundle was recorded");
                }
                std::panic::resume_unwind(panic);
            }
        },
    };

    if let Some(path) = &opts.metrics_out {
        let runs: Vec<RunMetrics<'_>> = results
            .iter()
            .map(|r| RunMetrics {
                app: r.app,
                setup: &r.setup,
                deque_policy: r.deque_policy,
                run: &r.run,
                tiny_cores: &r.tiny_cores,
            })
            .collect();
        let doc = metrics_document(&runs);
        std::fs::write(path, doc.to_json() + "\n")
            .unwrap_or_else(|e| panic!("--metrics-out {path}: {e}"));
        println!("[obs] metrics document ({} runs) -> {path}", results.len());
    }
    if let Some(path) = &opts.trace_out {
        let runs: Vec<TraceRun<'_>> =
            results.iter().map(|r| TraceRun { app: r.app, setup: &r.setup, run: &r.run }).collect();
        let doc = export_chrome_trace(&runs);
        let summary = validate_chrome_trace(&doc)
            .unwrap_or_else(|e| panic!("--trace-out produced an invalid document: {e}"));
        std::fs::write(path, doc.to_json() + "\n")
            .unwrap_or_else(|e| panic!("--trace-out {path}: {e}"));
        println!(
            "[obs] chrome trace ({} spans, {} task lifetimes, {} flows) -> {path} \
             (load in ui.perfetto.dev)",
            summary.complete, summary.async_pairs, summary.flows
        );
    }

    // ---------------- Figure 5 ----------------
    {
        let labels: Vec<String> = setups.iter().skip(1).map(|s| s.label.clone()).collect();
        let mut header = vec!["Name".to_owned()];
        header.extend(labels.iter().cloned());
        let mut rows = Vec::new();
        let mut geo: Vec<Vec<f64>> = vec![Vec::new(); labels.len()];
        for app in &apps {
            let mesi = find_result(&results, app.name, &mesi_label).cycles as f64;
            let mut row = vec![app.name.to_owned()];
            for (i, label) in labels.iter().enumerate() {
                let v = mesi / find_result(&results, app.name, label).cycles as f64;
                geo[i].push(v);
                row.push(format!("{v:.2}"));
            }
            rows.push(row);
        }
        let mut geo_row = vec!["geomean".to_owned()];
        geo_row.extend(geo.iter().map(|g| format!("{:.2}", geomean(g.iter().copied()))));
        rows.push(geo_row);
        println!("== Figure 5: speedup over big.TINY/MESI ({size:?}) ==\n");
        println!("{}", render_table(&header, &rows));
    }

    // ---------------- Figure 6 ----------------
    {
        let mut header = vec!["Name".to_owned()];
        header.extend(setups.iter().map(|s| s.label.clone()));
        let mut rows = Vec::new();
        for app in &apps {
            let mut row = vec![app.name.to_owned()];
            for setup in &setups {
                let r = find_result(&results, app.name, &setup.label);
                row.push(format!("{:.1}%", 100.0 * r.l1d_hit_rate()));
            }
            rows.push(row);
        }
        println!("== Figure 6: tiny-core L1D hit rate ({size:?}) ==\n");
        println!("{}", render_table(&header, &rows));
    }

    // ---------------- Figure 7 ----------------
    {
        let mut header = vec!["Name".to_owned(), "Config".to_owned()];
        header.extend(breakdown_labels().map(String::from));
        header.push("Total".to_owned());
        let mut rows = Vec::new();
        for app in &apps {
            let mesi_total =
                find_result(&results, app.name, &mesi_label).tiny_breakdown().total().max(1) as f64;
            for setup in &setups {
                let r = find_result(&results, app.name, &setup.label);
                let b = r.tiny_breakdown();
                let mut row = vec![app.name.to_owned(), setup.label.clone()];
                for (_, cycles) in b.paper_groups() {
                    row.push(format!("{:.3}", cycles as f64 / mesi_total));
                }
                row.push(format!("{:.3}", b.total() as f64 / mesi_total));
                rows.push(row);
            }
        }
        println!("== Figure 7: tiny-core time breakdown, normalized to b.T/MESI ({size:?}) ==\n");
        println!("{}", render_table(&header, &rows));
    }

    // ---------------- Figure 8 ----------------
    {
        let mut header = vec!["Name".to_owned(), "Config".to_owned()];
        header.extend(CLASSES.iter().map(|c| c.label().to_owned()));
        header.push("total".to_owned());
        let mut rows = Vec::new();
        for app in &apps {
            let mesi_total =
                find_result(&results, app.name, &mesi_label).traffic_bytes().max(1) as f64;
            for setup in &setups {
                let r = find_result(&results, app.name, &setup.label);
                let t = &r.run.report.traffic;
                let mut row = vec![app.name.to_owned(), setup.label.clone()];
                for c in CLASSES {
                    row.push(format!("{:.3}", t.bytes(c) as f64 / mesi_total));
                }
                row.push(format!("{:.3}", r.traffic_bytes() as f64 / mesi_total));
                rows.push(row);
            }
        }
        println!("== Figure 8: OCN traffic by category, normalized to b.T/MESI ({size:?}) ==\n");
        println!("{}", render_table(&header, &rows));
    }

    // ---------------- Table IV ----------------
    // Table IV and the ULI summary compare every HCC protocol against its
    // DTS pairing, which only the 64-core matrix runs in full.
    if opts.setups_256 {
        println!("(Table IV and the ULI summary need the full 64-core protocol matrix; skipped)");
    }
    if !opts.setups_256 {
        let header: Vec<String> = [
            "App",
            "InvDec dnv",
            "InvDec gwt",
            "InvDec gwb",
            "FlsDec gwb",
            "HitInc dnv",
            "HitInc gwt",
            "HitInc gwb",
        ]
        .map(String::from)
        .to_vec();
        let pct_dec = |hcc: u64, dts: u64| -> String {
            if hcc == 0 {
                "--".to_owned()
            } else {
                format!("{:.2}%", 100.0 * (hcc.saturating_sub(dts)) as f64 / hcc as f64)
            }
        };
        let mut rows = Vec::new();
        for app in &apps {
            let mut row = vec![app.name.to_owned()];
            let mut hit_inc = Vec::new();
            let mut fls_dec = String::new();
            for proto in [Protocol::DeNovo, Protocol::GpuWt, Protocol::GpuWb] {
                let hcc = find_result(&results, app.name, &format!("b.T/HCC-{}", proto.label()));
                let dts =
                    find_result(&results, app.name, &format!("b.T/HCC-DTS-{}", proto.label()));
                let (mh, md) = (hcc.tiny_mem(), dts.tiny_mem());
                row.push(pct_dec(mh.lines_invalidated, md.lines_invalidated));
                if proto == Protocol::GpuWb {
                    fls_dec = pct_dec(mh.lines_flushed, md.lines_flushed);
                }
                hit_inc.push(format!("{:.2}%", 100.0 * (dts.l1d_hit_rate() - hcc.l1d_hit_rate())));
            }
            row.push(fls_dec);
            row.extend(hit_inc);
            rows.push(row);
        }
        println!("== Table IV: DTS vs HCC reductions ({size:?}) ==\n");
        println!("{}", render_table(&header, &rows));
    }

    // ---------------- ULI overhead summary (Section VI-C claims) ----------
    if !opts.setups_256 {
        println!("== ULI network summary (DTS configurations) ==\n");
        for app in &apps {
            for proto in [Protocol::DeNovo, Protocol::GpuWt, Protocol::GpuWb] {
                let r = find_result(&results, app.name, &format!("b.T/HCC-DTS-{}", proto.label()));
                let u = &r.run.report.uli;
                println!(
                    "{:<12} {:<4} msgs {:>8}  nacks {:>6}  mean hops {:>5.1}  mean lat {:>6.1}  util {:>6.3}%",
                    app.name,
                    proto.label(),
                    u.messages,
                    u.nacks,
                    u.mean_hops,
                    u.mean_latency,
                    100.0 * u.utilization
                );
            }
        }
    }

    // ---------------- Fault-injection summary (only when armed) ----------
    if opts.fault_plan.is_some() {
        let header: Vec<String> = [
            "Name",
            "Config",
            "Injected",
            "MeshSpikes",
            "UliTimeouts",
            "Fallbacks",
            "ForcedMiss",
            "Crashes",
            "Orphans",
            "Rescues",
            "Reexec",
            "JoinsFix",
            "Quar",
            "Reviv",
        ]
        .map(String::from)
        .to_vec();
        let mut rows = Vec::new();
        for app in &apps {
            for setup in &setups {
                let r = find_result(&results, app.name, &setup.label);
                rows.push(vec![
                    app.name.to_owned(),
                    setup.label.clone(),
                    r.run.report.fault_counters.total().to_string(),
                    r.run.report.mesh_fault_spikes.to_string(),
                    r.run.stats.uli_timeouts.to_string(),
                    r.run.stats.fallback_steals.to_string(),
                    r.run.stats.forced_steal_misses.to_string(),
                    r.run.report.fault_counters.crashes.to_string(),
                    r.run.stats.orphans_reclaimed.to_string(),
                    r.run.stats.mailbox_rescues.to_string(),
                    r.run.stats.reexecutions.to_string(),
                    r.run.stats.joins_repaired.to_string(),
                    r.run.stats.quarantines.to_string(),
                    r.run.stats.revivals.to_string(),
                ]);
            }
        }
        println!("== Fault injection summary ({size:?}) ==\n");
        println!("{}", render_table(&header, &rows));
    }

    // ---------------- Crash-recovery audit (only when crash-armed) -------
    // Every run's task-event stream must audit clean: at-least-once with
    // full recovery accounting (a mid-execution death is acceptable only if
    // covered by a respawn; re-execution only for idempotency-whitelisted
    // kernels). A dirty audit fails the whole evaluation.
    if crash_armed {
        let header: Vec<String> =
            ["Name", "Config", "Tasks", "Respawns", "Discards", "Recovered", "Verdict"]
                .map(String::from)
                .to_vec();
        let mut rows = Vec::new();
        let mut dirty = 0usize;
        let mut first_dirty: Option<(&bigtiny_bench::AppResult, &Setup)> = None;
        for app in &apps {
            for setup in &setups {
                let r = find_result(&results, app.name, &setup.label);
                let audit = audit_task_events(&r.run.task_events, true, r.app);
                if !audit.is_clean() {
                    dirty += 1;
                    first_dirty.get_or_insert((r, setup));
                    eprintln!("[audit] {} on {}:", r.app, setup.label);
                    eprint!("{}", audit.render());
                }
                rows.push(vec![
                    app.name.to_owned(),
                    setup.label.clone(),
                    audit.tasks.to_string(),
                    audit.respawns.to_string(),
                    audit.discards.to_string(),
                    audit.recovered.to_string(),
                    if audit.is_clean() {
                        format!("clean {:#018x}", audit.verdict_hash())
                    } else {
                        format!("{} violation(s)", audit.violations.len())
                    },
                ]);
            }
        }
        println!("== Crash-recovery audit ({size:?}) ==\n");
        println!("{}", render_table(&header, &rows));
        if dirty > 0 {
            // A dirty audit is a forensic event: dump the first offender's
            // flight tails before failing the evaluation.
            if let (Some(path), Some((r, setup))) = (&opts.blackbox_out, first_dirty) {
                let doc = blackbox_from_report(
                    "crash_audit",
                    backend_label(&setup.sys),
                    &setup.sys.faults.to_spec(),
                    &r.run.report,
                );
                write_blackbox(path, &doc);
            }
            eprintln!("[audit] {dirty} run(s) failed the crash-recovery audit");
            std::process::exit(1);
        }
        println!("all {} crash-armed runs audited clean", rows.len());
    }

    // ---------------- Explicit black-box dump (clean completion) ---------
    if let Some(path) = &opts.blackbox_out {
        if let (Some(r), Some(setup)) = (results.last(), setups.last()) {
            let doc = blackbox_from_report(
                "explicit",
                backend_label(&setup.sys),
                &setup.sys.faults.to_spec(),
                &r.run.report,
            );
            write_blackbox(path, &doc);
        }
    }
}
