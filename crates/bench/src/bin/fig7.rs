//! Figure 7: aggregated tiny-core execution-time breakdown, normalized to
//! `b.T/MESI`, per application and configuration.

use bigtiny_bench::{
    apps_from_env, breakdown_labels, find_result, render_table, run_matrix, size_from_env, Setup,
};

fn main() {
    let size = size_from_env();
    let apps = apps_from_env();
    let setups = Setup::big_tiny_matrix();
    let results = run_matrix(&setups, &apps, size);

    let mut header = vec!["Name".to_owned(), "Config".to_owned()];
    header.extend(breakdown_labels().map(String::from));
    header.push("Total(norm)".to_owned());

    let mut rows = Vec::new();
    for app in &apps {
        let mesi_total =
            find_result(&results, app.name, "b.T/MESI").tiny_breakdown().total().max(1) as f64;
        for setup in &setups {
            let r = find_result(&results, app.name, &setup.label);
            let b = r.tiny_breakdown();
            let mut row = vec![app.name.to_owned(), setup.label.clone()];
            for (_, cycles) in b.paper_groups() {
                row.push(format!("{:.3}", cycles as f64 / mesi_total));
            }
            row.push(format!("{:.3}", b.total() as f64 / mesi_total));
            rows.push(row);
        }
    }
    println!(
        "Figure 7: tiny-core execution-time breakdown, normalized to b.T/MESI ({size:?} inputs)\n"
    );
    println!("{}", render_table(&header, &rows));
    println!(
        "Expected shape: HCC adds Flush (gwb) and Atomic (gwt/gwb) time; DTS removes most of it."
    );
}
