//! `model_check`: DPOR exploration of the schedule space of tiny configs.
//!
//! The conformance sweep (`check_all`) validates every kernel on exactly
//! one schedule per config — the sequencer's default `MinCore` tie-break.
//! This bin turns that single-trace check into a bounded proof over the
//! *schedule space*: for each kernel × setup it walks the sequencer's
//! tie-break choice tree with `bigtiny_checker::explore` (persistent-set
//! DFS + partial-order reduction), re-running the system under
//! `SchedulePolicy::Scripted` and applying the full battery to every
//! explored schedule:
//!
//! - the three checker passes (happens-before races, staleness replay,
//!   sync-discipline lint),
//! - kernel `verify()` against the host reference,
//! - the zero-stale-reads and cycle-conservation invariants,
//! - the task-event recovery audit,
//! - final-memory fingerprint invariance (schedule-deterministic kernels
//!   only), which doubles as the per-`RacyTag` idempotence-safety pass.
//!
//! Kernels: a local 2-core `fib` micro-kernel (pure spawn/sync + one AMO
//! accumulator — the smallest interesting steal pattern) plus the six
//! registry kernels with schedule-deterministic outputs. Setups: 2-core
//! tiny-only machines under MESI/Baseline (one cell per deque policy:
//! locked, Chase-Lev, fence-free, idempotent), DeNovo/HCC, and
//! DeNovo/HCC-DTS. The multiplicity policies (fence-free, idempotent)
//! audit their task-event streams in the checker's `Multiplicity` mode
//! (at-most-twice with idempotent side-effects) and run only the
//! idempotence-whitelisted kernels; each also gets a `+dup` cell with a
//! seeded [`MutationKind::DupTask`] so the sweep proves the battery,
//! kernel `verify()`, and fingerprint invariance hold with a duplicate
//! execution present under every explored tie-break.
//!
//! Writes a nested JSON verdict document (schema
//! `bigtiny-model-check-v2`, which added the per-cell `policy` and
//! `dup_injected` keys) to `MODEL_CHECK_verdicts.json` (or
//! `$BIGTINY_MC_OUT`), validated in CI by `json_check`. Env knobs:
//! `BIGTINY_MC_SCHEDULES` (execution budget per cell, default 24),
//! `BIGTINY_MC_DEPTH` (choice-point depth budget, default 5),
//! `BIGTINY_MC_APPS` (comma-separated subset of the kernel list).
//!
//! Usage:
//!
//! ```text
//! cargo run --release --bin model_check                  # full sweep
//! BIGTINY_MC_APPS=fib cargo run --release --bin model_check
//! ```
//!
//! Replaying a repro: a failure row carries the minimal choice script;
//! re-run the same config with
//! `SystemConfig::with_schedule(SchedulePolicy::Scripted(script))` to
//! land on the failing schedule deterministically.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use bigtiny_apps::{app_by_name, AppSize, Prepared, RootFn};
use bigtiny_bench::{render_table, Setup};
use bigtiny_checker::explore::{explore, ExploreBudget, ExploreReport, ScheduleOutcome};
use bigtiny_checker::{audit_task_events_mode, check_run, kernel_is_duplicate_safe, AuditMode};
use bigtiny_core::{
    parallel_invoke, run_task_parallel, DequeKind, Mutation, MutationKind, RuntimeConfig,
    RuntimeKind, TaskCx,
};
use bigtiny_engine::{AddrSpace, CheckMode, Protocol, SchedulePolicy, ShScalar, SystemConfig};
use bigtiny_obs::CycleConservation;

/// Kernels with schedule-deterministic output (plus the local `fib`).
const MC_APPS: &[&str] =
    &["fib", "cilk5-nq", "cilk5-cs", "cilk5-mt", "ligra-bf", "ligra-cc", "ligra-tc"];

/// Simulated-core count of every explored config.
const CORES: usize = 2;

fn fib_body(cx: &mut TaskCx<'_>, n: u64, acc: Arc<ShScalar<u64>>) {
    if n < 2 {
        cx.port().advance(2);
        if n == 1 {
            acc.amo(cx.port(), |c| *c += 1);
        }
        return;
    }
    let (a, b) = (Arc::clone(&acc), acc);
    parallel_invoke(cx, move |cx| fib_body(cx, n - 1, a), move |cx| fib_body(cx, n - 2, b));
}

/// The local micro-kernel: `fib(8)` counted by one-AMO-per-leaf, the
/// smallest workload that steals, joins, and contends on one word.
fn fib_prepared(space: &mut AddrSpace) -> Prepared {
    const N: u64 = 8;
    const WANT: u64 = 21;
    let acc = Arc::new(ShScalar::new(space, 0u64));
    let (a2, a3) = (Arc::clone(&acc), Arc::clone(&acc));
    let root: RootFn = Box::new(move |cx| fib_body(cx, N, a2));
    let verify = Box::new(move || {
        let got = acc.host_read();
        if got == WANT {
            Ok(())
        } else {
            Err(format!("fib: counted {got}, expected {WANT}"))
        }
    });
    Prepared { root, verify, fingerprint: Some(Box::new(move || a3.host_read())) }
}

fn prepare(app: &str, space: &mut AddrSpace) -> Prepared {
    if app == "fib" {
        fib_prepared(space)
    } else {
        let spec = app_by_name(app).unwrap_or_else(|| panic!("unknown kernel {app}"));
        spec.prepare_default(space, AppSize::Test)
    }
}

/// One sweep cell: a setup (whose `rt.deque_kind` is the policy under
/// test) plus whether a `DupTask` mutation is armed.
struct Cell {
    setup: Setup,
    dup_injected: bool,
}

fn mc_cells() -> Vec<Cell> {
    let rt = |kind| {
        let mut rt = RuntimeConfig::new(kind);
        rt.record_task_events = true;
        rt
    };
    let baseline = |suffix: &str, deque: DequeKind, dup: bool| {
        let mut rt = rt(RuntimeKind::Baseline);
        rt.deque_kind = deque;
        if dup {
            // Seed one permitted duplicate: re-execute the task claimed by
            // core 0's first clean local pop. Core 0 always pops (the root
            // spawns there), so the duplicate lands on every schedule.
            rt.mutation = Some(Mutation { kind: MutationKind::DupTask, core: 0, nth: 0 });
        }
        Cell {
            setup: Setup {
                label: format!("tiny{CORES}/MESI{suffix}"),
                sys: SystemConfig::tiny_only(CORES, Protocol::Mesi),
                rt,
            },
            dup_injected: dup,
        }
    };
    vec![
        baseline("", DequeKind::Locked, false),
        baseline("-cl", DequeKind::ChaseLev, false),
        baseline("-ff", DequeKind::FenceFree, false),
        baseline("-ff+dup", DequeKind::FenceFree, true),
        baseline("-idem", DequeKind::Idempotent, false),
        baseline("-idem+dup", DequeKind::Idempotent, true),
        Cell {
            setup: Setup {
                label: format!("tiny{CORES}/HCC-dnv"),
                sys: SystemConfig::tiny_only(CORES, Protocol::DeNovo),
                rt: rt(RuntimeKind::Hcc),
            },
            dup_injected: false,
        },
        Cell {
            setup: Setup {
                label: format!("tiny{CORES}/HCC-DTS-dnv"),
                sys: SystemConfig::tiny_only(CORES, Protocol::DeNovo),
                rt: rt(RuntimeKind::Dts),
            },
            dup_injected: false,
        },
    ]
}

/// Executes one scripted schedule of `app` on `setup` and gathers the
/// full battery's verdicts.
fn run_scripted(setup: &Setup, app: &str, script: &[u32]) -> ScheduleOutcome {
    let sys = setup
        .sys
        .clone()
        .with_check(CheckMode::Full)
        .with_schedule(SchedulePolicy::Scripted(script.to_vec()));
    let mut space = AddrSpace::new();
    let prepared = prepare(app, &mut space);
    let rt = setup.rt.clone();
    let run =
        catch_unwind(AssertUnwindSafe(|| run_task_parallel(&sys, &rt, &mut space, prepared.root)));
    let run = match run {
        Ok(run) => run,
        Err(p) => {
            let what = p
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| p.downcast_ref::<&str>().map(|s| (*s).to_owned()))
                .unwrap_or_else(|| "non-string panic".to_owned());
            return ScheduleOutcome {
                choices: Vec::new(),
                events: Vec::new(),
                report: bigtiny_checker::check_events(&[], CheckMode::Full, &[]),
                failure: Some(format!("panic: {}", what.lines().next().unwrap_or(""))),
                fingerprint: None,
            };
        }
    };
    let report = check_run(&sys, &run.report);
    let mut failure = (prepared.verify)().err();
    if failure.is_none() && run.report.stale_reads > 0 {
        failure = Some(format!("{} stale reads", run.report.stale_reads));
    }
    if failure.is_none() {
        let cons = CycleConservation::from_report(&run.report);
        if !cons.holds() {
            failure = Some(format!(
                "cycle conservation breach: buckets {} != core cycles {}",
                cons.bucket_sum(),
                cons.total_core_cycles
            ));
        }
    }
    if failure.is_none() {
        // Multiplicity policies relax the audit from exactly-once to
        // at-most-twice-with-idempotent-side-effects; everything else
        // keeps the exact contract.
        let mode = if setup.rt.kind == RuntimeKind::Baseline && setup.rt.deque_kind.multiplicity() {
            AuditMode::Multiplicity { crash_armed: false }
        } else {
            AuditMode::ExactlyOnce
        };
        let audit = audit_task_events_mode(&run.task_events, mode, app);
        if !audit.is_clean() {
            failure = audit.violations.first().map(|v| format!("audit: {v}"));
        }
    }
    ScheduleOutcome {
        choices: run.report.choice_points.clone(),
        events: run.report.mem_events.clone(),
        report,
        failure,
        fingerprint: prepared.fingerprint.map(|f| f()),
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().map_or(default, |v| {
        v.parse().unwrap_or_else(|_| panic!("{name} must be an integer, got {v}"))
    })
}

fn json_row(app: &str, cell: &Cell, r: &ExploreReport) -> String {
    let mut s = String::from("{");
    s.push_str(&format!("\"app\":\"{app}\",\"setup\":\"{}\"", cell.setup.label));
    s.push_str(&format!(",\"policy\":\"{}\"", cell.setup.rt.deque_kind.label()));
    s.push_str(&format!(",\"dup_injected\":{}", u8::from(cell.dup_injected)));
    s.push_str(&format!(",\"explored\":{}", r.schedules_explored));
    s.push_str(&format!(",\"pruned\":{}", r.schedules_pruned));
    s.push_str(&format!(",\"max_depth\":{}", r.max_depth));
    s.push_str(&format!(",\"truncated\":{}", u8::from(r.truncated)));
    s.push_str(&format!(",\"clean\":{}", u8::from(r.is_clean())));
    s.push_str(&format!(",\"failures\":{}", r.failures.len()));
    let script = r.failures.first().map_or(String::new(), |f| {
        f.script.iter().map(u32::to_string).collect::<Vec<_>>().join(",")
    });
    s.push_str(&format!(",\"first_fail_script\":\"{script}\""));
    s.push_str(&format!(",\"fingerprint_invariant\":{}", u8::from(r.fingerprint_invariant)));
    let tags_ok = r.tags.iter().all(|t| t.schedule_invariant);
    s.push_str(&format!(",\"tags_schedule_invariant\":{}", u8::from(tags_ok)));
    s.push_str(&format!(
        ",\"tags_fired\":{}",
        r.tags.iter().filter(|t| t.schedules_fired > 0).count()
    ));
    s.push('}');
    s
}

fn main() {
    let budget = ExploreBudget {
        max_choice_points: env_usize("BIGTINY_MC_DEPTH", 5),
        max_schedules: env_usize("BIGTINY_MC_SCHEDULES", 24),
    };
    let apps: Vec<String> = match std::env::var("BIGTINY_MC_APPS") {
        Ok(list) => list.split(',').map(|s| s.trim().to_owned()).collect(),
        Err(_) => MC_APPS.iter().map(|&s| s.to_owned()).collect(),
    };
    let cells = mc_cells();

    let header: Vec<String> = ["app", "setup", "policy", "explored", "pruned", "depth", "verdict"]
        .map(String::from)
        .to_vec();
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut dirty = 0usize;

    for app in &apps {
        for cell in &cells {
            let setup = &cell.setup;
            // The multiplicity policies may legitimately re-execute a task;
            // that is only sound for kernels on the *duplicate-safe*
            // whitelist (strictly stronger than respawn idempotence:
            // `fib`'s and nqueens' accumulators survive a cut-short
            // respawn but double-count a completed task run twice).
            if setup.rt.deque_kind.multiplicity() && !kernel_is_duplicate_safe(app) {
                continue;
            }
            let report = explore(&budget, |script| run_scripted(setup, app, script));
            eprintln!(
                "[model_check] {:<10} {:<22} explored {:>4} pruned {:>4}  {}",
                app,
                setup.label,
                report.schedules_explored,
                report.schedules_pruned,
                if report.is_clean() { "clean" } else { "SCHEDULE-DEPENDENT" },
            );
            if !report.is_clean() {
                dirty += 1;
                eprint!("{}", report.render());
            }
            rows.push(vec![
                app.clone(),
                setup.label.clone(),
                setup.rt.deque_kind.label().to_owned(),
                report.schedules_explored.to_string(),
                report.schedules_pruned.to_string(),
                format!("{}{}", report.max_depth, if report.truncated { "+" } else { "" }),
                if report.is_clean() {
                    "clean".to_owned()
                } else {
                    format!("{} failing schedule(s)", report.failures.len())
                },
            ]);
            json_rows.push(json_row(app, cell, &report));
        }
    }

    println!(
        "schedule-space sweep ({} kernels x {} cells, budget {} schedules / depth {})\n",
        apps.len(),
        cells.len(),
        budget.max_schedules,
        budget.max_choice_points,
    );
    println!("{}", render_table(&header, &rows));

    let doc = format!(
        "{{\"schema\":\"bigtiny-model-check-v2\",\"budget\":{{\"max_schedules\":{},\"max_choice_points\":{}}},\"runs\":[\n{}\n]}}\n",
        budget.max_schedules,
        budget.max_choice_points,
        json_rows.join(",\n"),
    );
    let out_path =
        std::env::var("BIGTINY_MC_OUT").unwrap_or_else(|_| "MODEL_CHECK_verdicts.json".to_owned());
    std::fs::write(&out_path, doc).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    eprintln!("[model_check] wrote {out_path}");

    if dirty > 0 {
        eprintln!("[model_check] {dirty} cell(s) schedule-dependent");
        std::process::exit(1);
    }
    println!("all {} cells schedule-independent within budget", rows.len());
}
