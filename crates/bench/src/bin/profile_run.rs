//! Critical-path profiler harness: answers "why doesn't my kernel
//! scale?" for one app on the big.TINY configurations.
//!
//! Arms task-event recording and per-task cycle attribution (both
//! bit-for-bit invisible to simulated results), replays the task DAG, and
//! reports per setup:
//!
//! * work T1, burdened span T∞, parallelism T1/T∞, measured Tp, and how
//!   close the run came to the greedy bound `max(⌈T1/P⌉, T∞)`;
//! * the cycle-conservation table — where every core-cycle of the run
//!   went, buckets summing exactly to total core-cycles;
//! * the burden on the critical path by category, and the chain itself
//!   (task ids, cores, steal crossings);
//! * what-if projections: completion bounds with zero-cost steals, zero
//!   coherence overhead, and pure compute.
//!
//! `--out` writes the v2 metrics document for the profiled runs;
//! `--trace-out` additionally arms per-core tracing and writes a Chrome
//! trace with the critical path as its own highlighted track.

use bigtiny_apps::app_by_name;
use bigtiny_bench::live::{HeartbeatWriter, DEFAULT_HEARTBEAT_EVERY};
use bigtiny_bench::{apps_from_env, render_table, run_app, size_from_env, Setup};
use bigtiny_obs::{
    export_chrome_trace, metrics_document, replay_run, validate_chrome_trace, verify_attr_spans,
    CycleConservation, CycleLens, RunMetrics, TraceRun, WhatIf,
};

const USAGE: &str = "usage: profile_run [--app NAME] [--dts-only] [--out PATH] [--trace-out PATH]
                   [--heartbeat-out PATH]
  --app NAME       profile one kernel (default: BIGTINY_APPS or cilk5-nq)
  --dts-only       only the three DTS configurations (skip MESI + plain HCC)
  --out PATH       write the v2 metrics document (critpath section populated)
  --trace-out PATH also arm per-core tracing; write a Chrome trace with the
                   critical path as a highlighted track (ui.perfetto.dev)
  --heartbeat-out PATH
                   stream live telemetry (bigtiny-obs-heartbeat-v1 lines)
size comes from BIGTINY_SIZE (test|eval|large)";

fn main() {
    let mut app_name: Option<String> = None;
    let mut dts_only = false;
    let mut out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut heartbeat_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value\n{USAGE}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--app" => app_name = Some(value("--app")),
            "--dts-only" => dts_only = true,
            "--out" => out = Some(value("--out")),
            "--trace-out" => trace_out = Some(value("--trace-out")),
            "--heartbeat-out" => heartbeat_out = Some(value("--heartbeat-out")),
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                std::process::exit(2);
            }
        }
    }

    let size = size_from_env();
    let apps = match &app_name {
        Some(name) => vec![app_by_name(name).unwrap_or_else(|| {
            eprintln!("unknown app `{name}`");
            std::process::exit(2);
        })],
        None => apps_from_env(),
    };
    let mut setups = Setup::big_tiny_matrix();
    if dts_only {
        setups.retain(|s| s.label.contains("DTS"));
    }
    for s in &mut setups {
        s.sys.attr = true;
        s.rt.record_task_events = true;
        if trace_out.is_some() {
            s.sys.trace = true;
        }
    }

    let heartbeat = heartbeat_out.as_ref().map(|path| {
        HeartbeatWriter::create(path, DEFAULT_HEARTBEAT_EVERY)
            .unwrap_or_else(|e| panic!("--heartbeat-out {path}: {e}"))
    });
    let mut results = Vec::new();
    for app in &apps {
        for setup in &setups {
            let mut armed = setup.clone();
            if let Some(w) = &heartbeat {
                w.arm(&mut armed, app.name);
            }
            results.push(run_app(&armed, app, size, 0));
        }
    }

    let mut summary_rows = Vec::new();
    let mut conservation_rows = Vec::new();
    for r in &results {
        verify_attr_spans(&r.run.report)
            .unwrap_or_else(|e| panic!("{} @ {}: bad attribution spans: {e}", r.app, r.setup));
        let w = WhatIf::project(&r.run)
            .unwrap_or_else(|e| panic!("{} @ {}: profile failed: {e}", r.app, r.setup));
        let cp = &w.burdened;
        summary_rows.push(vec![
            r.app.to_owned(),
            r.setup.clone(),
            cp.work.to_string(),
            cp.span.to_string(),
            format!("{:.2}", cp.parallelism()),
            w.measured_tp.to_string(),
            format!("{:.3}", w.measured.speedup_bound),
            w.zero_steal.greedy_bound.to_string(),
            w.zero_coherence.greedy_bound.to_string(),
            w.work_only.greedy_bound.to_string(),
            format!("{}/{}", cp.chain_steals(), cp.chain.len()),
        ]);

        let cons = CycleConservation::from_report(&r.run.report);
        assert!(
            cons.holds(),
            "{} @ {}: cycle conservation violated: buckets {} != core-cycles {}",
            r.app,
            r.setup,
            cons.bucket_sum(),
            cons.total_core_cycles
        );
        let mut row = vec![r.app.to_owned(), r.setup.clone()];
        let total = cons.total_core_cycles.max(1) as f64;
        for (_, v) in cons.pairs() {
            row.push(format!("{:.1}%", 100.0 * v as f64 / total));
        }
        row.push(cons.total_core_cycles.to_string());
        conservation_rows.push(row);
    }

    let summary_header: Vec<String> = [
        "App",
        "Config",
        "T1",
        "Tinf",
        "T1/Tinf",
        "Tp",
        "Tp/greedy",
        "0-steal",
        "0-coh",
        "ideal",
        "path steals",
    ]
    .map(String::from)
    .to_vec();
    println!("== Critical-path profile ({size:?}) ==\n");
    println!("{}", render_table(&summary_header, &summary_rows));
    println!(
        "Tp/greedy: measured completion over max(ceil(T1/P), Tinf) — 1.0 is a perfect greedy\n\
         schedule of the burdened DAG. 0-steal / 0-coh / ideal: the same greedy bound with\n\
         steal-protocol, coherence, or all overhead cycles removed from every task.\n"
    );

    let mut cons_header: Vec<String> = vec!["App".into(), "Config".into()];
    cons_header.extend(
        ["compute", "steal", "amo", "inval", "flush", "idle", "core-cycles"].map(String::from),
    );
    println!("== Cycle conservation (buckets sum exactly to core-cycles) ==\n");
    println!("{}", render_table(&cons_header, &conservation_rows));

    // The burdened span decomposed by category, for the slowest DTS run
    // (or the last run when DTS was filtered out): the direct answer to
    // "what is on my critical path?".
    if let Some(r) = results
        .iter()
        .filter(|r| r.setup.contains("DTS"))
        .max_by_key(|r| r.cycles)
        .or_else(|| results.last())
    {
        let cp = replay_run(&r.run, CycleLens::Burdened).expect("profiled above");
        println!("== Burden on the critical path: {} @ {} ==\n", r.app, r.setup);
        print!("{}", cp.span_breakdown);
        println!("{:>10}: {:>12}\n", "span", cp.span);
    }

    if let Some(path) = &out {
        let runs: Vec<RunMetrics<'_>> = results
            .iter()
            .map(|r| RunMetrics {
                app: r.app,
                setup: &r.setup,
                deque_policy: r.deque_policy,
                run: &r.run,
                tiny_cores: &r.tiny_cores,
            })
            .collect();
        let doc = metrics_document(&runs);
        std::fs::write(path, doc.to_json() + "\n").unwrap_or_else(|e| panic!("--out {path}: {e}"));
        println!("[profile_run] metrics document ({} runs) -> {path}", results.len());
    }
    if let Some(path) = &trace_out {
        let runs: Vec<TraceRun<'_>> =
            results.iter().map(|r| TraceRun { app: r.app, setup: &r.setup, run: &r.run }).collect();
        let doc = export_chrome_trace(&runs);
        let s = validate_chrome_trace(&doc)
            .unwrap_or_else(|e| panic!("--trace-out produced an invalid document: {e}"));
        std::fs::write(path, doc.to_json() + "\n")
            .unwrap_or_else(|e| panic!("--trace-out {path}: {e}"));
        println!(
            "[profile_run] chrome trace ({} spans incl. critical-path track, {} lifetimes) -> {path}",
            s.complete, s.async_pairs
        );
    }
    println!("[profile_run] OK: {} runs profiled", results.len());
}
