//! Chaos fuzzer: random fault-plan sampling, an invariant runner, and a
//! shrinking pass that reduces any failing plan to a minimal reproducer.
//!
//! The sampler draws [`FaultPlan`]s from a seeded stream, arming each fault
//! dimension independently at realistic magnitudes (crash dimensions
//! included). The invariant runner executes kernels under the plan on the
//! 16-core DTS machine of the fault ablation, with the watchdog armed and
//! task-lifecycle events recorded, and fails the plan if any run panics
//! (verification, stale reads, watchdog abort) or its task-event audit is
//! not clean. The shrinker then minimizes a failing plan against any
//! still-fails oracle: whole dimensions are dropped to a fixpoint, the
//! crash-core mask is bit-shrunk, and the surviving magnitudes are
//! binary-searched down. The result prints as a `--fault-plan` spec
//! (`FaultPlan::to_spec`) that `eval_all` accepts directly.

use std::panic::{catch_unwind, AssertUnwindSafe};

use bigtiny_apps::{AppSize, AppSpec};
use bigtiny_checker::audit_task_events;
use bigtiny_core::{RuntimeConfig, RuntimeKind};
use bigtiny_engine::{FaultPlan, Protocol, SystemConfig, XorShift64};
use bigtiny_mesh::{CoreSet, MeshConfig, Topology};

use crate::{run_app, Setup};

/// One invariant failure: the kernel that broke and why.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FuzzFailure {
    /// Name of the kernel whose run violated an invariant.
    pub app: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

/// The machine the fuzzer drives: the 16-core (1 big + 15 tiny) DTS/gwb
/// system of the fault ablation, with the liveness watchdog armed so a hung
/// plan aborts (and counts as a failure) instead of wedging the fuzzer, and
/// task events recorded for the exactly/at-least-once audit.
pub fn fuzz_setup(plan: FaultPlan) -> Setup {
    let label = format!("chaos[{}]", plan.to_spec());
    let sys = SystemConfig::big_tiny(
        "chaos-fuzz",
        MeshConfig::with_topology(Topology::new(4, 4)),
        1,
        15,
        Protocol::GpuWb,
    )
    .with_faults(plan)
    .with_watchdog(2_000_000);
    let mut rt = RuntimeConfig::new(RuntimeKind::Dts);
    rt.record_task_events = true;
    Setup { label, sys, rt }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Runs one kernel under `plan` and checks every invariant: the run must
/// complete (no watchdog abort), verify functionally, read nothing stale,
/// and its task-event stream must audit clean (exactly-once without a crash
/// dimension, at-least-once with full recovery accounting with one).
pub fn check_app(plan: &FaultPlan, app: &AppSpec, size: AppSize) -> Option<FuzzFailure> {
    check_app_with(plan, app, size, &mut |_, _| {})
}

/// [`check_app`] with an arming hook run on the probe's setup before the
/// run (a heartbeat sink, a live-stats handle — observation only).
pub fn check_app_with(
    plan: &FaultPlan,
    app: &AppSpec,
    size: AppSize,
    arm: &mut dyn FnMut(&mut Setup, &str),
) -> Option<FuzzFailure> {
    let mut setup = fuzz_setup(plan.clone());
    arm(&mut setup, app.name);
    let setup = &setup;
    let r = match catch_unwind(AssertUnwindSafe(|| run_app(setup, app, size, 0))) {
        Ok(r) => r,
        Err(payload) => {
            return Some(FuzzFailure {
                app: app.name,
                message: format!("run panicked: {}", panic_message(payload.as_ref())),
            })
        }
    };
    let audit = audit_task_events(&r.run.task_events, plan.crash_armed(), app.name);
    if !audit.is_clean() {
        return Some(FuzzFailure {
            app: app.name,
            message: format!("task audit failed:\n{}", audit.render()),
        });
    }
    None
}

/// Checks every kernel in `apps` under `plan`; returns the first failure.
pub fn check_plan(plan: &FaultPlan, apps: &[AppSpec], size: AppSize) -> Option<FuzzFailure> {
    apps.iter().find_map(|app| check_app(plan, app, size))
}

/// [`check_plan`] with a per-probe arming hook (see [`check_app_with`]).
pub fn check_plan_with(
    plan: &FaultPlan,
    apps: &[AppSpec],
    size: AppSize,
    arm: &mut dyn FnMut(&mut Setup, &str),
) -> Option<FuzzFailure> {
    apps.iter().find_map(|app| check_app_with(plan, app, size, arm))
}

/// Samples one fault plan from the stream: each dimension arms
/// independently, crash dimensions at a higher rate (they are the ones this
/// fuzzer exists to stress), with at least one dimension always armed.
pub fn sample_plan(rng: &mut XorShift64) -> FaultPlan {
    let mut p = FaultPlan::none();
    p.seed = rng.next_u64() | 1;
    if rng.next_below(3) == 0 {
        p.uli_drop_per_mille = 1 + rng.next_below(350) as u32;
    }
    if rng.next_below(3) == 0 {
        p.uli_nack_per_mille = 1 + rng.next_below(300) as u32;
    }
    if rng.next_below(3) == 0 {
        p.uli_delay_per_mille = 1 + rng.next_below(300) as u32;
        p.uli_delay_cycles = 50 + rng.next_below(500);
    }
    if rng.next_below(3) == 0 {
        p.uli_rx_drop_per_mille = 1 + rng.next_below(200) as u32;
    }
    if rng.next_below(3) == 0 {
        p.steal_miss_per_mille = 1 + rng.next_below(600) as u32;
    }
    if rng.next_below(3) == 0 {
        p.mesh_spike_per_mille = 1 + rng.next_below(80) as u32;
        p.mesh_spike_cycles = 100 + rng.next_below(500);
    }
    if rng.next_below(2) == 0 {
        // Doom one to three of the 15 tiny cores (core 0 is ineligible).
        for _ in 0..1 + rng.next_below(3) {
            p.crash_cores.insert(1 + rng.next_below(15) as usize);
        }
        p.crash_at_cycle = 500 + rng.next_below(3500);
        if rng.next_below(3) == 0 {
            p.revive_after_cycles = 2000 + rng.next_below(6000);
        }
    }
    if !p.is_active() {
        p.steal_miss_per_mille = 1 + rng.next_below(600) as u32;
    }
    p
}

/// Number of independently-armable fault dimensions (the unit the shrinker
/// drops whole). Magnitude knobs (`*_cycles`, `crash_at`) belong to their
/// parent dimension and are not counted.
pub const DIMENSIONS: usize = 9;

fn dimension_armed(p: &FaultPlan, dim: usize) -> bool {
    match dim {
        0 => p.uli_drop_per_mille > 0,
        1 => p.uli_nack_per_mille > 0,
        2 => p.uli_delay_per_mille > 0,
        3 => p.uli_rx_drop_per_mille > 0,
        4 => p.steal_miss_per_mille > 0,
        5 => p.mesh_spike_per_mille > 0,
        6 => p.crash_per_mille > 0,
        7 => !p.crash_cores.is_empty(),
        8 => p.revive_after_cycles > 0,
        _ => false,
    }
}

fn clear_dimension(p: &mut FaultPlan, dim: usize) {
    match dim {
        0 => p.uli_drop_per_mille = 0,
        1 => p.uli_nack_per_mille = 0,
        2 => {
            p.uli_delay_per_mille = 0;
            p.uli_delay_cycles = 0;
        }
        3 => p.uli_rx_drop_per_mille = 0,
        4 => p.steal_miss_per_mille = 0,
        5 => {
            p.mesh_spike_per_mille = 0;
            p.mesh_spike_cycles = 0;
        }
        6 => p.crash_per_mille = 0,
        7 => p.crash_cores = CoreSet::new(),
        8 => p.revive_after_cycles = 0,
        _ => {}
    }
    // A plan with no crash dimension has no use for the crash schedule.
    if !p.crash_armed() {
        p.crash_at_cycle = 0;
        p.revive_after_cycles = 0;
    }
}

/// Count of armed dimensions — the shrinker's minimality measure.
pub fn plan_dimensions(p: &FaultPlan) -> usize {
    (0..DIMENSIONS).filter(|&d| dimension_armed(p, d)).count()
}

/// Binary-searches one magnitude down to the smallest value for which
/// `fails` still holds (assuming rough monotonicity; the final probe guards
/// against a non-monotone oracle by only committing a confirmed failure).
fn binary_shrink(
    cur: &mut FaultPlan,
    read: fn(&FaultPlan) -> u64,
    write: fn(&mut FaultPlan, u64),
    fails: &mut dyn FnMut(&FaultPlan) -> bool,
) {
    let top = read(cur);
    if top <= 1 {
        return;
    }
    let (mut lo, mut hi) = (1u64, top);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let mut cand = cur.clone();
        write(&mut cand, mid);
        if fails(&cand) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let mut cand = cur.clone();
    write(&mut cand, lo);
    if fails(&cand) {
        *cur = cand;
    }
}

/// Shrinks a failing plan against the `fails` oracle: drops whole
/// dimensions to a fixpoint, bit-shrinks the crash-core mask, then
/// binary-searches every surviving magnitude down. The returned plan still
/// fails the oracle and is dimension-minimal with respect to single
/// removals.
pub fn shrink_plan(start: &FaultPlan, fails: &mut dyn FnMut(&FaultPlan) -> bool) -> FaultPlan {
    let mut cur = start.clone();
    // Phase 1: drop whole dimensions until no single removal still fails.
    loop {
        let mut changed = false;
        for d in 0..DIMENSIONS {
            if !dimension_armed(&cur, d) {
                continue;
            }
            let mut cand = cur.clone();
            clear_dimension(&mut cand, d);
            if fails(&cand) {
                cur = cand;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Phase 2: shrink the crash set one doomed core at a time.
    for core in cur.crash_cores.iter().collect::<Vec<_>>() {
        if cur.crash_cores.count() > 1 {
            let mut cand = cur.clone();
            cand.crash_cores.remove(core);
            if fails(&cand) {
                cur = cand;
            }
        }
    }
    // Phase 3: binary-search the surviving magnitudes down.
    type Knob = (fn(&FaultPlan) -> u64, fn(&mut FaultPlan, u64));
    const KNOBS: [Knob; 10] = [
        (|p| p.uli_drop_per_mille as u64, |p, v| p.uli_drop_per_mille = v as u32),
        (|p| p.uli_nack_per_mille as u64, |p, v| p.uli_nack_per_mille = v as u32),
        (|p| p.uli_delay_per_mille as u64, |p, v| p.uli_delay_per_mille = v as u32),
        (|p| p.uli_delay_cycles, |p, v| p.uli_delay_cycles = v),
        (|p| p.uli_rx_drop_per_mille as u64, |p, v| p.uli_rx_drop_per_mille = v as u32),
        (|p| p.steal_miss_per_mille as u64, |p, v| p.steal_miss_per_mille = v as u32),
        (|p| p.mesh_spike_per_mille as u64, |p, v| p.mesh_spike_per_mille = v as u32),
        (|p| p.mesh_spike_cycles, |p, v| p.mesh_spike_cycles = v),
        (|p| p.crash_per_mille as u64, |p, v| p.crash_per_mille = v as u32),
        (|p| p.revive_after_cycles, |p, v| p.revive_after_cycles = v),
    ];
    for (read, write) in KNOBS {
        binary_shrink(&mut cur, read, write, fails);
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The idempotence whitelist names real registry kernels, both
    /// directions: every entry resolves, and every registered kernel is
    /// claimed (all thirteen follow the at-least-once side-effect
    /// discipline). A stale or misspelled entry silently exempts nothing —
    /// the audit just flags every respawn on that kernel — and the chaos
    /// fuzzer only catches it when a crash happens to land a respawn
    /// there, so pin the mapping directly.
    #[test]
    fn idempotence_whitelist_matches_the_registry_exactly() {
        use bigtiny_checker::IDEMPOTENT_KERNELS;
        for name in IDEMPOTENT_KERNELS {
            assert!(
                bigtiny_apps::app_by_name(name).is_some(),
                "whitelist entry {name:?} is not a registered kernel"
            );
        }
        for app in bigtiny_apps::all_apps() {
            assert!(
                IDEMPOTENT_KERNELS.contains(&app.name),
                "kernel {:?} is not claimed idempotent — harden it or audit why",
                app.name
            );
        }
    }

    /// The acceptance test: a fat "known-bad" mutation (hostile storm plus
    /// a three-core crash) whose failure actually hinges on two dimensions
    /// must shrink to exactly those two, with minimal magnitudes.
    #[test]
    fn shrinker_reduces_a_seeded_known_bad_mutation_to_two_dimensions() {
        let mut fails = |p: &FaultPlan| p.crash_cores.contains(9) && p.steal_miss_per_mille >= 200;
        let mut seeded = FaultPlan::hostile(7);
        seeded.steal_miss_per_mille = 600;
        seeded.crash_cores = CoreSet::from_mask((1 << 5) | (1 << 9) | (1 << 13));
        seeded.crash_at_cycle = 1500;
        seeded.revive_after_cycles = 3000;
        assert!(fails(&seeded), "seeded mutation must fail the oracle");
        assert!(plan_dimensions(&seeded) >= 8, "the mutation starts fat");

        let min = shrink_plan(&seeded, &mut fails);
        assert!(fails(&min), "the minimal plan still fails");
        assert_eq!(plan_dimensions(&min), 2, "spec: {}", min.to_spec());
        assert_eq!(min.crash_cores, CoreSet::from_mask(1 << 9), "crash set shrunk to the culprit");
        assert_eq!(min.steal_miss_per_mille, 200, "magnitude binary-searched to the threshold");
        assert_eq!(min.uli_drop_per_mille, 0);
        assert_eq!(min.uli_nack_per_mille, 0);
        assert_eq!(min.uli_delay_per_mille, 0);
        assert_eq!(min.uli_rx_drop_per_mille, 0);
        assert_eq!(min.mesh_spike_per_mille, 0);
        assert_eq!(min.revive_after_cycles, 0, "revive dropped with the rest");
        // The reproducer spec round-trips through the CLI parser.
        assert_eq!(FaultPlan::from_spec(&min.to_spec()), Some(min.clone()));
    }

    #[test]
    fn shrinker_handles_single_dimension_failures() {
        let mut fails = |p: &FaultPlan| p.uli_drop_per_mille >= 37;
        let seeded = FaultPlan::hostile(3);
        assert!(fails(&seeded));
        let min = shrink_plan(&seeded, &mut fails);
        assert_eq!(plan_dimensions(&min), 1);
        assert_eq!(min.uli_drop_per_mille, 37);
    }

    #[test]
    fn sampling_is_deterministic_and_always_active() {
        let draw = |seed| {
            let mut rng = XorShift64::new(seed);
            (0..50).map(|_| sample_plan(&mut rng)).collect::<Vec<_>>()
        };
        let a = draw(1);
        assert_eq!(a, draw(1), "same seed, same plan stream");
        assert_ne!(a, draw(2), "seed varies the stream");
        assert!(a.iter().all(|p| p.is_active()), "every sampled plan arms something");
        assert!(
            a.iter().any(|p| p.crash_armed()) && a.iter().any(|p| !p.crash_armed()),
            "the stream mixes crash and transient-only plans"
        );
        // Every sampled plan's spec round-trips (the reproducer printing
        // path works for anything the sampler can draw).
        for p in &a {
            assert_eq!(FaultPlan::from_spec(&p.to_spec()), Some(p.clone()), "{}", p.to_spec());
        }
    }

    /// The invariant runner accepts a real surviving crash run end to end
    /// (and exercises the audit wiring on a genuine task-event stream).
    #[test]
    fn invariant_runner_accepts_a_surviving_crash_plan() {
        let app = bigtiny_apps::app_by_name("cilk5-nq").unwrap();
        let plan = FaultPlan::crash_one(11);
        assert_eq!(check_app(&plan, &app, AppSize::Test), None);
    }
}
