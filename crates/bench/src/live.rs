//! Live-telemetry wiring for the harness binaries: heartbeat streaming
//! and black-box dumps.
//!
//! [`HeartbeatWriter`] owns a `--heartbeat-out` file and arms setups so
//! every run streams `bigtiny-obs-heartbeat-v1` lines into it (follow
//! live with `tail_run`, validate with `json_check`). [`write_blackbox`]
//! writes a validated black-box document plus its Perfetto tail-trace
//! sibling, and [`dump_on_panic`] turns a caught watchdog/poison panic
//! into a dump by retrieving the engine's crash-time bundle.

use std::fs::File;
use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use bigtiny_core::RuntimeStats;
use bigtiny_engine::sync::RwLock;
use bigtiny_engine::{last_bundle, Heartbeat, HeartbeatSnap};
use bigtiny_obs::{
    blackbox_from_bundle, blackbox_tail_trace, heartbeat_line, validate_blackbox, Json,
};

use crate::Setup;

/// Default heartbeat cadence in sequencer grants (`--heartbeat-every`).
pub const DEFAULT_HEARTBEAT_EVERY: u64 = 10_000;

struct HbShared {
    file: Mutex<File>,
    t0: Instant,
    /// `(grants, when)` of the previous beat of the current run, for the
    /// grants/s rate over the last interval (host-side, out-of-band).
    last: Mutex<(u64, Instant)>,
}

/// A shared `--heartbeat-out` sink. One writer serves every run of a
/// harness invocation; [`HeartbeatWriter::arm`] labels each run's lines
/// with its `(app, setup)` so the stream stays per-run demultiplexable.
pub struct HeartbeatWriter {
    shared: Arc<HbShared>,
    every: u64,
}

impl HeartbeatWriter {
    /// Creates (truncating) the heartbeat file at `path`, beating every
    /// `every` grants.
    pub fn create(path: &str, every: u64) -> std::io::Result<Self> {
        assert!(every > 0, "--heartbeat-every must be at least 1");
        let file = File::create(path)?;
        let now = Instant::now();
        Ok(HeartbeatWriter {
            shared: Arc::new(HbShared {
                file: Mutex::new(file),
                t0: now,
                last: Mutex::new((0, now)),
            }),
            every,
        })
    }

    /// Arms `setup` (in place) so its next run streams heartbeats for
    /// kernel `app` into this writer: installs the engine heartbeat sink
    /// and a live [`RuntimeStats`] handle the sink samples. Pass to
    /// [`run_matrix_with`](crate::run_matrix_with) as the arming hook.
    /// Observation-only — simulated results are bit-for-bit unchanged.
    pub fn arm(&self, setup: &mut Setup, app: &str) {
        let stats = Arc::new(RwLock::new(RuntimeStats::default()));
        setup.rt.live_stats = Some(Arc::clone(&stats));
        let shared = Arc::clone(&self.shared);
        let app = app.to_owned();
        let label = setup.label.clone();
        // A new run restarts the rate window (grant counters reset per run).
        *shared.last.lock().expect("heartbeat rate slot") = (0, Instant::now());
        let sink = move |snap: &HeartbeatSnap| {
            let now = Instant::now();
            let wall_ms = shared.t0.elapsed().as_millis() as u64;
            let rate = {
                let mut last = shared.last.lock().expect("heartbeat rate slot");
                let dt = now.duration_since(last.1).as_secs_f64();
                let grants = snap.total_grants.saturating_sub(last.0);
                *last = (snap.total_grants, now);
                if dt > 0.0 {
                    grants as f64 / dt
                } else {
                    0.0
                }
            };
            let s = *stats.read();
            let extra = vec![
                ("wall_ms".to_owned(), Json::u64(wall_ms)),
                ("grants_per_sec".to_owned(), Json::f64(rate)),
                ("tasks_executed".to_owned(), Json::u64(s.tasks_executed)),
                ("steals".to_owned(), Json::u64(s.steals)),
                ("steal_attempts".to_owned(), Json::u64(s.steal_attempts)),
                ("revivals".to_owned(), Json::u64(s.revivals)),
            ];
            let line = heartbeat_line(&app, &label, snap, extra);
            let mut f = shared.file.lock().expect("heartbeat file");
            // Heartbeats are advisory: a full disk must not kill the run.
            let _ = writeln!(f, "{line}");
            let _ = f.flush();
        };
        setup.sys = setup.sys.clone().with_heartbeat(Heartbeat::new(self.every, Arc::new(sink)));
    }
}

/// Writes a black-box document to `path` and its Perfetto tail trace to
/// `path.trace.json`, validating both first.
///
/// # Panics
///
/// Panics if the document fails structural validation or either file
/// cannot be written — a harness asked for forensics; losing them
/// silently is worse than aborting.
pub fn write_blackbox(path: &str, doc: &Json) {
    let summary =
        validate_blackbox(doc).unwrap_or_else(|e| panic!("black-box document invalid: {e}"));
    std::fs::write(path, doc.to_json() + "\n").unwrap_or_else(|e| panic!("{path}: {e}"));
    let trace_path = format!("{path}.trace.json");
    let trace = blackbox_tail_trace(doc).expect("validated above");
    std::fs::write(&trace_path, trace.to_json() + "\n")
        .unwrap_or_else(|e| panic!("{trace_path}: {e}"));
    eprintln!(
        "[blackbox] {} flight events over {}/{} cores -> {path} (+ {trace_path})",
        summary.events, summary.cores_with_tail, summary.cores
    );
}

/// Black-box handling for a panic caught around a run: if the engine
/// recorded a crash-time [`DiagnosticBundle`](bigtiny_engine::DiagnosticBundle)
/// (watchdog trip or worker-panic poison), dumps it to `path` and returns
/// `true`. A panic with no bundle (e.g. a harness assertion) returns
/// `false` untouched.
pub fn dump_on_panic(path: &str) -> bool {
    match last_bundle() {
        Some(bundle) => {
            write_blackbox(path, &blackbox_from_bundle(&bundle));
            true
        }
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_matrix_with, Setup};
    use bigtiny_apps::{app_by_name, AppSize};
    use bigtiny_engine::Protocol;
    use bigtiny_obs::{parse_json, validate_heartbeat_stream};

    #[test]
    fn armed_matrix_streams_valid_heartbeats() {
        let dir = std::env::temp_dir().join("bigtiny-live-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hb.jsonl");
        let path = path.to_str().unwrap();
        // A tight cadence so even the test-size run emits several beats.
        let writer = HeartbeatWriter::create(path, 200).unwrap();
        let setups = [Setup::bt_hcc(Protocol::GpuWb, true)];
        let apps = [app_by_name("cilk5-nq").unwrap()];
        let results = run_matrix_with(&setups, &apps, AppSize::Test, |s, app| writer.arm(s, app));
        assert_eq!(results.len(), 1);
        let text = std::fs::read_to_string(path).unwrap();
        let beats = validate_heartbeat_stream(&text).expect("stream validates");
        assert!(beats >= 2, "expected several beats, got {beats}");
        // The final beat's deterministic fields reflect the run's tail.
        let last = text.lines().rev().find(|l| !l.trim().is_empty()).unwrap();
        let doc = parse_json(last).unwrap();
        assert_eq!(doc.get("app").and_then(Json::as_str), Some("cilk5-nq"));
        assert_eq!(doc.get("setup").and_then(Json::as_str), Some("b.T/HCC-DTS-gwb"));
        let grants = doc.get("grants").and_then(Json::as_num).unwrap();
        assert!(grants as u64 <= results[0].run.report.seq_grants);
    }

    #[test]
    fn explicit_blackbox_roundtrip() {
        use bigtiny_obs::blackbox_from_report;
        let dir = std::env::temp_dir().join("bigtiny-live-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("box.json");
        let path = path.to_str().unwrap();
        let setup = Setup::bt_hcc(Protocol::GpuWb, true);
        let app = app_by_name("cilk5-nq").unwrap();
        let r = crate::run_app(&setup, &app, AppSize::Test, 0);
        let backend = bigtiny_engine::backend_label(&setup.sys);
        let doc =
            blackbox_from_report("explicit", backend, &setup.sys.faults.to_spec(), &r.run.report);
        write_blackbox(path, &doc);
        let reread = parse_json(std::fs::read_to_string(path).unwrap().trim()).unwrap();
        let summary = validate_blackbox(&reread).unwrap();
        assert!(summary.events > 0, "always-on ring captured the run");
        assert!(std::fs::metadata(format!("{path}.trace.json")).unwrap().len() > 0);
    }
}
