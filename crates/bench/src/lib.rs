#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Experiment harness for the big.TINY reproduction.
//!
//! Provides the named machine+runtime setups of the paper's evaluation
//! (Section V), runs application kernels on them with functional
//! verification, and formats the result tables. Each table/figure of the
//! paper has a binary in `src/bin/` that drives this library; see
//! `EXPERIMENTS.md` at the repository root for the index.
//!
//! Environment knobs (read by the binaries):
//!
//! * `BIGTINY_SIZE` — `test` | `eval` (default) | `large`: input scale.
//! * `BIGTINY_APPS` — comma-separated kernel names to restrict a run.

use bigtiny_apps::{all_apps, AppSize, AppSpec};
use bigtiny_core::{run_task_parallel, RuntimeConfig, RuntimeKind, TaskRun};
use bigtiny_engine::{AddrSpace, Protocol, SystemConfig, TimeCategory};

pub mod fuzz;
pub mod live;

/// A machine + runtime pairing with a display label.
#[derive(Clone, Debug)]
pub struct Setup {
    /// Display label, e.g. `b.T/HCC-DTS-gwb`.
    pub label: String,
    /// Simulated machine.
    pub sys: SystemConfig,
    /// Runtime variant.
    pub rt: RuntimeConfig,
}

impl Setup {
    fn new(label: &str, sys: SystemConfig, kind: RuntimeKind) -> Self {
        Setup { label: label.to_owned(), sys, rt: RuntimeConfig::new(kind) }
    }

    /// Serial reference: one in-order tiny core ("Serial IO" in Table III).
    pub fn serial_io() -> Self {
        Self::new("serial-io", SystemConfig::tiny_only(1, Protocol::Mesi), RuntimeKind::Baseline)
    }

    /// `O3x{n}`: a traditional multicore of `n` big cores.
    pub fn o3(n: usize) -> Self {
        Self::new(&format!("O3x{n}"), SystemConfig::o3(n), RuntimeKind::Baseline)
    }

    /// `big.TINY/MESI`: full-system hardware coherence.
    pub fn bt_mesi() -> Self {
        Self::new("b.T/MESI", SystemConfig::big_tiny_mesi(), RuntimeKind::Baseline)
    }

    /// `big.TINY/HCC-*` (optionally with DTS).
    pub fn bt_hcc(proto: Protocol, dts: bool) -> Self {
        let kind = if dts { RuntimeKind::Dts } else { RuntimeKind::Hcc };
        let label = if dts {
            format!("b.T/HCC-DTS-{}", proto.label())
        } else {
            format!("b.T/HCC-{}", proto.label())
        };
        Self::new(&label, SystemConfig::big_tiny_hcc(proto), kind)
    }

    /// The 256-core variants of Table V.
    pub fn bt_256(proto: Protocol, kind: RuntimeKind) -> Self {
        let (sys, label) = match (proto, kind) {
            (Protocol::Mesi, RuntimeKind::Baseline) => {
                (SystemConfig::big_tiny_256(Protocol::Mesi), "b.T-256/MESI".to_owned())
            }
            (p, RuntimeKind::Hcc) => {
                (SystemConfig::big_tiny_256(p), format!("b.T-256/HCC-{}", p.label()))
            }
            (p, RuntimeKind::Dts) => {
                (SystemConfig::big_tiny_256(p), format!("b.T-256/HCC-DTS-{}", p.label()))
            }
            _ => panic!("unsupported 256-core combination"),
        };
        Setup { label, sys, rt: RuntimeConfig::new(kind) }
    }

    /// The seven 64-core big.TINY configurations of Figures 5-8:
    /// MESI, HCC-{dnv,gwt,gwb}, HCC-DTS-{dnv,gwt,gwb}.
    pub fn big_tiny_matrix() -> Vec<Setup> {
        let mut v = vec![Self::bt_mesi()];
        for proto in [Protocol::DeNovo, Protocol::GpuWt, Protocol::GpuWb] {
            v.push(Self::bt_hcc(proto, false));
        }
        for proto in [Protocol::DeNovo, Protocol::GpuWt, Protocol::GpuWb] {
            v.push(Self::bt_hcc(proto, true));
        }
        v
    }
}

/// One verified application run with the measurements the figures need.
#[derive(Debug)]
pub struct AppResult {
    /// Kernel name.
    pub app: &'static str,
    /// Setup label.
    pub setup: String,
    /// End-to-end simulated cycles.
    pub cycles: u64,
    /// Deque-policy label the run scheduled under (`locked`, `chase-lev`,
    /// `fence-free`, `idempotent`).
    pub deque_policy: &'static str,
    /// Full engine/runtime measurements.
    pub run: TaskRun,
    /// Ids of the tiny cores of the setup (for Figures 6/7 aggregation).
    pub tiny_cores: Vec<usize>,
}

impl AppResult {
    /// Aggregate tiny-core L1D hit rate (Figure 6). Falls back to all cores
    /// for setups without tiny cores (the O3 systems).
    pub fn l1d_hit_rate(&self) -> f64 {
        let cores: Vec<usize> = if self.tiny_cores.is_empty() {
            (0..self.run.report.mem_stats.len()).collect()
        } else {
            self.tiny_cores.clone()
        };
        self.run.report.l1d_hit_rate(&cores)
    }

    /// Aggregate tiny-core memory stats (Table IV).
    pub fn tiny_mem(&self) -> bigtiny_engine::CoreMemStats {
        self.run.report.mem_stats_over(&self.tiny_cores)
    }

    /// Aggregate tiny-core time breakdown (Figure 7).
    pub fn tiny_breakdown(&self) -> bigtiny_engine::TimeBreakdown {
        self.run.report.breakdown_over(&self.tiny_cores)
    }

    /// Total data-OCN bytes (Figure 8).
    pub fn traffic_bytes(&self) -> u64 {
        self.run.report.total_traffic_bytes()
    }
}

/// Runs `app` on `setup` at `size` (granularity `grain`, `0` = default),
/// verifying the functional result and the zero-stale-reads invariant.
///
/// # Panics
///
/// Panics if verification fails or the run would have read stale data on
/// real hardware — a harness must never report numbers from a broken run.
pub fn run_app(setup: &Setup, app: &AppSpec, size: AppSize, grain: usize) -> AppResult {
    let mut space = AddrSpace::new();
    let prepared = (app.prepare)(&mut space, size, grain);
    let run = run_task_parallel(&setup.sys, &setup.rt, &mut space, prepared.root);
    if let Err(e) = (prepared.verify)() {
        panic!("{} on {}: verification failed: {e}", app.name, setup.label);
    }
    assert_eq!(run.report.stale_reads, 0, "{} on {}: stale reads detected", app.name, setup.label);
    AppResult {
        app: app.name,
        setup: setup.label.clone(),
        cycles: run.report.completion_cycles,
        deque_policy: setup.rt.deque_kind.label(),
        tiny_cores: setup.sys.tiny_cores(),
        run,
    }
}

/// A machine-readable summary of one run, for downstream analysis
/// (`BIGTINY_JSON=<path>` makes [`run_matrix`] append one JSON object per
/// line). Serialized by [`ResultRecord::to_json_line`] — the workspace is
/// dependency-free, and the record is flat, so the JSON is hand-rolled.
#[derive(Clone, Debug)]
pub struct ResultRecord {
    /// Kernel name.
    pub app: String,
    /// Setup label.
    pub setup: String,
    /// End-to-end simulated cycles.
    pub cycles: u64,
    /// Instructions retired across all cores.
    pub instructions: u64,
    /// Tiny-core L1D hit rate in `[0, 1]`.
    pub l1d_hit_rate: f64,
    /// Tiny-core lines invalidated by bulk self-invalidations.
    pub lines_invalidated: u64,
    /// Tiny-core lines written back by bulk flushes.
    pub lines_flushed: u64,
    /// Tiny-core atomic operations.
    pub amos: u64,
    /// Total data-OCN bytes.
    pub traffic_bytes: u64,
    /// ULI messages (0 outside DTS).
    pub uli_messages: u64,
    /// Successful steals.
    pub steals: u64,
    /// Logical work (instructions).
    pub work: u64,
    /// Critical path (instructions).
    pub span: u64,
    /// Tasks executed.
    pub tasks: u64,
    /// Total injected faults (0 on a golden-path run).
    pub faults_injected: u64,
    /// Injected data-OCN latency spikes.
    pub mesh_fault_spikes: u64,
    /// ULI steal responses the hardened runtime timed out on.
    pub uli_timeouts: u64,
    /// Shared-memory fallback steals the hardened DTS runtime performed.
    pub fallback_steals: u64,
    /// Steal attempts the fault plan forced to miss.
    pub forced_steal_misses: u64,
    /// Fail-stop crashes taken (0 unless a crash dimension was armed).
    pub crashes: u64,
    /// Unstarted tasks discarded from fail-stopped cores' deques.
    pub orphans_reclaimed: u64,
    /// Stolen tasks rescued from fail-stopped thieves' mailboxes.
    pub mailbox_rescues: u64,
    /// Tasks re-spawned because their executor fail-stopped mid-body.
    pub reexecutions: u64,
    /// Join counters repaired by a re-spawned task.
    pub joins_repaired: u64,
    /// Victim-quarantine events on dead cores.
    pub quarantines: u64,
    /// Cores that revived and rejoined scheduling.
    pub revivals: u64,
    /// Total sequencer token grants (the unit of the watchdog budget).
    pub seq_grants: u64,
}

impl From<&AppResult> for ResultRecord {
    fn from(r: &AppResult) -> Self {
        let mem = r.tiny_mem();
        let ws = r.run.stats.workspan;
        ResultRecord {
            app: r.app.to_owned(),
            setup: r.setup.clone(),
            cycles: r.cycles,
            instructions: r.run.report.total_instructions(),
            l1d_hit_rate: r.l1d_hit_rate(),
            lines_invalidated: mem.lines_invalidated,
            lines_flushed: mem.lines_flushed,
            amos: mem.amos,
            traffic_bytes: r.traffic_bytes(),
            uli_messages: r.run.report.uli.messages,
            steals: r.run.stats.steals,
            work: ws.work,
            span: ws.span,
            tasks: ws.tasks,
            faults_injected: r.run.report.fault_counters.total(),
            mesh_fault_spikes: r.run.report.mesh_fault_spikes,
            uli_timeouts: r.run.stats.uli_timeouts,
            fallback_steals: r.run.stats.fallback_steals,
            forced_steal_misses: r.run.stats.forced_steal_misses,
            crashes: r.run.report.fault_counters.crashes,
            orphans_reclaimed: r.run.stats.orphans_reclaimed,
            mailbox_rescues: r.run.stats.mailbox_rescues,
            reexecutions: r.run.stats.reexecutions,
            joins_repaired: r.run.stats.joins_repaired,
            quarantines: r.run.stats.quarantines,
            revivals: r.run.stats.revivals,
            seq_grants: r.run.report.seq_grants,
        }
    }
}

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders an `f64` as a JSON value. JSON has no NaN/Infinity literals, so
/// non-finite values (e.g. a hit rate from a run with zero accesses) become
/// `null` instead of producing an unparseable line.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// A value in a flat JSON-lines record.
#[derive(Clone, PartialEq, Debug)]
pub enum JsonScalar {
    /// A JSON string (unescaped).
    Str(String),
    /// A finite JSON number.
    Num(f64),
    /// JSON `null` (how non-finite floats are encoded).
    Null,
}

/// Strictly parses one flat single-line JSON object (the shape
/// [`ResultRecord::to_json_line`] emits) into its key/value pairs, in
/// order. Rejects nesting, duplicate keys, bad escapes, non-finite
/// numbers, and trailing garbage — CI runs every emitted line through this
/// so an unparseable record fails loudly instead of corrupting downstream
/// analysis.
pub fn parse_json_line(line: &str) -> Result<Vec<(String, JsonScalar)>, String> {
    struct P<'a> {
        s: &'a [u8],
        i: usize,
    }
    impl P<'_> {
        fn skip_ws(&mut self) {
            while matches!(self.s.get(self.i), Some(b' ' | b'\t')) {
                self.i += 1;
            }
        }
        fn next_byte(&mut self) -> Result<u8, String> {
            self.skip_ws();
            let b = *self.s.get(self.i).ok_or("unexpected end of line")?;
            self.i += 1;
            Ok(b)
        }
        fn expect(&mut self, want: u8) -> Result<(), String> {
            let got = self.next_byte()?;
            if got == want {
                Ok(())
            } else {
                Err(format!(
                    "expected {:?} at byte {}, got {:?}",
                    want as char,
                    self.i - 1,
                    got as char
                ))
            }
        }
        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                let b = *self.s.get(self.i).ok_or("unterminated string")?;
                self.i += 1;
                match b {
                    b'"' => return Ok(out),
                    b'\\' => {
                        let e = *self.s.get(self.i).ok_or("unterminated escape")?;
                        self.i += 1;
                        match e {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'n' => out.push('\n'),
                            b'r' => out.push('\r'),
                            b't' => out.push('\t'),
                            b'u' => {
                                let hex = self
                                    .s
                                    .get(self.i..self.i + 4)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .ok_or("truncated \\u escape")?;
                                let cp = u32::from_str_radix(hex, 16)
                                    .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                                out.push(
                                    char::from_u32(cp)
                                        .ok_or(format!("\\u{hex} is not a scalar"))?,
                                );
                                self.i += 4;
                            }
                            other => return Err(format!("bad escape \\{}", other as char)),
                        }
                    }
                    b if b < 0x20 => return Err("raw control character in string".to_owned()),
                    b if b < 0x80 => out.push(b as char),
                    _ => {
                        // Decode exactly one UTF-8 scalar from its leading
                        // byte; validating the whole remaining line here
                        // would make parsing quadratic in line length.
                        let start = self.i - 1;
                        let len = match b {
                            0xc0..=0xdf => 2,
                            0xe0..=0xef => 3,
                            0xf0..=0xf7 => 4,
                            _ => return Err("invalid UTF-8 in string".to_owned()),
                        };
                        let bytes = self.s.get(start..start + len).ok_or("truncated UTF-8")?;
                        let c = std::str::from_utf8(bytes)
                            .map_err(|_| "invalid UTF-8 in string")?
                            .chars()
                            .next()
                            .expect("nonempty");
                        out.push(c);
                        self.i = start + len;
                    }
                }
            }
        }
        fn value(&mut self) -> Result<JsonScalar, String> {
            self.skip_ws();
            match self.s.get(self.i) {
                Some(b'"') => Ok(JsonScalar::Str(self.string()?)),
                Some(b'n') => {
                    if self.s[self.i..].starts_with(b"null") {
                        self.i += 4;
                        Ok(JsonScalar::Null)
                    } else {
                        Err("bare word (only null is allowed)".to_owned())
                    }
                }
                Some(b'{' | b'[') => Err("nested containers are not flat".to_owned()),
                Some(_) => {
                    let start = self.i;
                    while matches!(
                        self.s.get(self.i),
                        Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                    ) {
                        self.i += 1;
                    }
                    let text = std::str::from_utf8(&self.s[start..self.i]).expect("ascii");
                    let v: f64 =
                        text.parse().map_err(|_| format!("bad number {text:?} at byte {start}"))?;
                    if !v.is_finite() {
                        return Err(format!("non-finite number {text:?}"));
                    }
                    Ok(JsonScalar::Num(v))
                }
                None => Err("unexpected end of line".to_owned()),
            }
        }
    }

    let mut p = P { s: line.as_bytes(), i: 0 };
    p.expect(b'{')?;
    let mut out: Vec<(String, JsonScalar)> = Vec::new();
    p.skip_ws();
    if p.s.get(p.i) == Some(&b'}') {
        p.i += 1;
    } else {
        loop {
            let key = p.string()?;
            if out.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate key {key:?}"));
            }
            p.expect(b':')?;
            let val = p.value()?;
            out.push((key, val));
            match p.next_byte()? {
                b',' => continue,
                b'}' => break,
                c => return Err(format!("expected ',' or '}}', got {:?}", c as char)),
            }
        }
    }
    p.skip_ws();
    if p.i != p.s.len() {
        return Err(format!("trailing bytes after object: {:?}", &line[p.i..]));
    }
    Ok(out)
}

impl ResultRecord {
    /// Renders the record as a single-line JSON object.
    pub fn to_json_line(&self) -> String {
        format!(
            concat!(
                "{{\"app\":\"{}\",\"setup\":\"{}\",\"cycles\":{},\"instructions\":{},",
                "\"l1d_hit_rate\":{},\"lines_invalidated\":{},\"lines_flushed\":{},",
                "\"amos\":{},\"traffic_bytes\":{},\"uli_messages\":{},\"steals\":{},",
                "\"work\":{},\"span\":{},\"tasks\":{},\"faults_injected\":{},",
                "\"mesh_fault_spikes\":{},\"uli_timeouts\":{},\"fallback_steals\":{},",
                "\"forced_steal_misses\":{},\"crashes\":{},\"orphans_reclaimed\":{},",
                "\"mailbox_rescues\":{},\"reexecutions\":{},\"joins_repaired\":{},",
                "\"quarantines\":{},\"revivals\":{},\"seq_grants\":{}}}"
            ),
            json_escape(&self.app),
            json_escape(&self.setup),
            self.cycles,
            self.instructions,
            json_f64(self.l1d_hit_rate),
            self.lines_invalidated,
            self.lines_flushed,
            self.amos,
            self.traffic_bytes,
            self.uli_messages,
            self.steals,
            self.work,
            self.span,
            self.tasks,
            self.faults_injected,
            self.mesh_fault_spikes,
            self.uli_timeouts,
            self.fallback_steals,
            self.forced_steal_misses,
            self.crashes,
            self.orphans_reclaimed,
            self.mailbox_rescues,
            self.reexecutions,
            self.joins_repaired,
            self.quarantines,
            self.revivals,
            self.seq_grants,
        )
    }
}

/// Runs every (setup × app) pairing, with progress on stderr. Results are
/// indexable with [`find_result`]. When `BIGTINY_JSON` names a file, one
/// [`ResultRecord`] per run is appended to it as JSON lines.
pub fn run_matrix(setups: &[Setup], apps: &[AppSpec], size: AppSize) -> Vec<AppResult> {
    run_matrix_with(setups, apps, size, |_, _| {})
}

/// [`run_matrix`] with a per-run arming hook: before each run, `arm` gets a
/// fresh clone of the setup plus the kernel name and may attach run-scoped
/// observers (a heartbeat sink labelled with this `(app, setup)`, a live
/// stats handle — see [`live::HeartbeatWriter::arm`]). The hook must not
/// change anything that affects simulated results.
pub fn run_matrix_with(
    setups: &[Setup],
    apps: &[AppSpec],
    size: AppSize,
    mut arm: impl FnMut(&mut Setup, &str),
) -> Vec<AppResult> {
    use std::io::Write;
    let mut json_out = std::env::var("BIGTINY_JSON").ok().map(|path| {
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .unwrap_or_else(|e| panic!("BIGTINY_JSON={path}: {e}"))
    });
    let mut out = Vec::with_capacity(setups.len() * apps.len());
    for app in apps {
        for setup in setups {
            let mut setup = setup.clone();
            arm(&mut setup, app.name);
            let setup = &setup;
            let t0 = std::time::Instant::now();
            let r = run_app(setup, app, size, 0);
            eprintln!(
                "[bench] {:<12} {:<18} {:>12} cycles  ({:.1}s wall)",
                app.name,
                setup.label,
                r.cycles,
                t0.elapsed().as_secs_f64()
            );
            if let Some(f) = json_out.as_mut() {
                let rec = ResultRecord::from(&r);
                writeln!(f, "{}", rec.to_json_line()).expect("write JSON record");
            }
            out.push(r);
        }
    }
    out
}

/// Looks up a result by app and setup label.
pub fn find_result<'a>(results: &'a [AppResult], app: &str, setup: &str) -> &'a AppResult {
    results
        .iter()
        .find(|r| r.app == app && r.setup == setup)
        .unwrap_or_else(|| panic!("missing result for {app} on {setup}"))
}

/// Input size from `BIGTINY_SIZE` (default `eval`).
pub fn size_from_env() -> AppSize {
    match std::env::var("BIGTINY_SIZE").as_deref() {
        Ok("test") => AppSize::Test,
        Ok("large") => AppSize::Large,
        Ok("eval") | Err(_) => AppSize::Eval,
        Ok(other) => panic!("BIGTINY_SIZE must be test|eval|large, got {other}"),
    }
}

/// Kernel list, restricted by `BIGTINY_APPS` if set.
pub fn apps_from_env() -> Vec<AppSpec> {
    let apps = all_apps();
    match std::env::var("BIGTINY_APPS") {
        Ok(list) => {
            let names: Vec<&str> = list.split(',').map(str::trim).collect();
            let picked: Vec<AppSpec> =
                apps.into_iter().filter(|a| names.contains(&a.name)).collect();
            assert!(!picked.is_empty(), "BIGTINY_APPS matched no kernels: {list}");
            picked
        }
        Err(_) => apps,
    }
}

/// Geometric mean of the positive values in the input.
///
/// Non-positive values (a degenerate run: a zero-cycle ratio, a failed
/// normalization) are skipped with a single stderr warning reporting how
/// many were dropped, instead of aborting a whole evaluation sweep that
/// already holds results for every other kernel. Returns 0.0 when no
/// positive value survives.
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    let mut skipped = 0usize;
    for v in values {
        if v > 0.0 {
            log_sum += v.ln();
            n += 1;
        } else {
            skipped += 1;
        }
    }
    if skipped > 0 {
        eprintln!("[geomean] skipped {skipped} non-positive value(s) of {}", n + skipped);
    }
    if n == 0 {
        return 0.0;
    }
    (log_sum / n as f64).exp()
}

/// Renders a fixed-width table: a header row plus data rows.
pub fn render_table(header: &[String], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "ragged table row");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(header, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// The Figure 7 category labels in display order.
pub fn breakdown_labels() -> [&'static str; 6] {
    ["Inst Fetch", "Data Load", "Data Store", "Atomic", "Flush", "Others"]
}

/// Re-export for binaries.
pub use bigtiny_mesh::{TrafficClass, TRAFFIC_CLASSES};

/// Time categories re-export for binaries.
pub const ALL_TIME_CATEGORIES: [TimeCategory; 9] = bigtiny_engine::TIME_CATEGORIES;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setup_labels_match_paper_names() {
        assert_eq!(Setup::bt_mesi().label, "b.T/MESI");
        assert_eq!(Setup::bt_hcc(Protocol::GpuWb, false).label, "b.T/HCC-gwb");
        assert_eq!(Setup::bt_hcc(Protocol::DeNovo, true).label, "b.T/HCC-DTS-dnv");
        assert_eq!(Setup::o3(8).label, "O3x8");
        let m = Setup::big_tiny_matrix();
        assert_eq!(m.len(), 7);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean([2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(std::iter::empty::<f64>()), 0.0);
    }

    #[test]
    fn geomean_skips_non_positive_values() {
        // A zero (degenerate ratio) must not poison the mean of the rest.
        assert!((geomean([2.0, 0.0, 8.0]) - 4.0).abs() < 1e-12);
        // Negative values are equally non-sensical in log space.
        assert!((geomean([-3.0, 2.0, 8.0]) - 4.0).abs() < 1e-12);
        // NaN is not > 0.0, so it is skipped rather than propagated.
        assert!((geomean([f64::NAN, 4.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_of_only_non_positive_values_is_zero() {
        assert_eq!(geomean([0.0, -1.0]), 0.0);
        assert_eq!(geomean([0.0]), 0.0);
    }

    #[test]
    fn table_rendering_aligns() {
        let t = render_table(
            &["a".into(), "bb".into()],
            &[vec!["1".into(), "2".into()], vec!["10".into(), "200".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[3].contains("10") && lines[3].contains("200"));
    }

    #[test]
    fn smoke_run_one_app_on_two_setups() {
        let app = bigtiny_apps::app_by_name("ligra-bfs").unwrap();
        for setup in [Setup::serial_io(), Setup::bt_hcc(Protocol::GpuWb, true)] {
            let r = run_app(&setup, &app, AppSize::Test, 8);
            assert!(r.cycles > 0);
        }
    }
}

#[cfg(test)]
mod json_tests {
    use super::*;

    /// Extracts the value of a numeric or string field from a flat
    /// single-line JSON object (enough of a parser for our own encoder).
    fn field<'a>(line: &'a str, key: &str) -> &'a str {
        let pat = format!("\"{key}\":");
        let start = line.find(&pat).unwrap_or_else(|| panic!("missing key {key}")) + pat.len();
        let rest = &line[start..];
        let end = rest
            .char_indices()
            .find(|(i, c)| (*c == ',' || *c == '}') && !rest[..*i].ends_with('\\'))
            .map(|(i, _)| i)
            .unwrap();
        rest[..end].trim_matches('"')
    }

    #[test]
    fn result_records_serialize_as_json_lines() {
        let app = bigtiny_apps::app_by_name("cilk5-nq").unwrap();
        let setup = Setup::bt_hcc(Protocol::GpuWb, true);
        let r = run_app(&setup, &app, AppSize::Test, 0);
        let rec = ResultRecord::from(&r);
        let line = rec.to_json_line();
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(!line.contains('\n'));
        assert_eq!(field(&line, "app"), "cilk5-nq");
        assert_eq!(field(&line, "cycles"), r.cycles.to_string());
        assert_eq!(field(&line, "steals"), r.run.stats.steals.to_string());
        assert_eq!(field(&line, "faults_injected"), "0", "golden path injects nothing");
        assert_eq!(field(&line, "seq_grants"), r.run.report.seq_grants.to_string());
        let span: u64 = field(&line, "span").parse().unwrap();
        let work: u64 = field(&line, "work").parse().unwrap();
        assert!(span <= work);
    }

    #[test]
    fn json_escaping_handles_special_characters() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    fn synthetic_record(hit_rate: f64) -> ResultRecord {
        ResultRecord {
            app: "synthetic \"app\"\n".to_owned(),
            setup: "b.T/HCC-gwb".to_owned(),
            cycles: 123,
            instructions: 456,
            l1d_hit_rate: hit_rate,
            lines_invalidated: 1,
            lines_flushed: 2,
            amos: 3,
            traffic_bytes: 4,
            uli_messages: 5,
            steals: 6,
            work: 7,
            span: 7,
            tasks: 8,
            faults_injected: 0,
            mesh_fault_spikes: 0,
            uli_timeouts: 0,
            fallback_steals: 0,
            forced_steal_misses: 0,
            crashes: 0,
            orphans_reclaimed: 0,
            mailbox_rescues: 0,
            reexecutions: 0,
            joins_repaired: 0,
            quarantines: 0,
            revivals: 0,
            seq_grants: 9,
        }
    }

    fn value_of<'a>(kv: &'a [(String, JsonScalar)], key: &str) -> &'a JsonScalar {
        &kv.iter().find(|(k, _)| k == key).unwrap_or_else(|| panic!("missing key {key}")).1
    }

    /// A record whose hit rate is NaN (zero tiny-core accesses) must still
    /// serialize to a line the strict parser accepts; the NaN comes back as
    /// `null`, never as a bare `NaN` token.
    #[test]
    fn non_finite_floats_round_trip_as_null() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let line = synthetic_record(bad).to_json_line();
            let kv = parse_json_line(&line).expect("strict parse of a non-finite record");
            assert_eq!(*value_of(&kv, "l1d_hit_rate"), JsonScalar::Null, "{line}");
        }
        let line = synthetic_record(0.875).to_json_line();
        let kv = parse_json_line(&line).expect("strict parse of a finite record");
        assert_eq!(*value_of(&kv, "l1d_hit_rate"), JsonScalar::Num(0.875));
        // Escaped strings decode back to the original text.
        assert_eq!(*value_of(&kv, "app"), JsonScalar::Str("synthetic \"app\"\n".to_owned()));
        assert_eq!(*value_of(&kv, "cycles"), JsonScalar::Num(123.0));
    }

    /// Control characters below 0x20 (a fault-plan or app name can carry
    /// them) must serialize as `\u00XX` escapes and decode back exactly —
    /// an unescaped control byte makes the line invalid JSON that
    /// [`parse_json_line`] rejects.
    #[test]
    fn control_characters_round_trip_through_json_lines() {
        let all_controls: String = (0u32..0x20).map(|cp| char::from_u32(cp).unwrap()).collect();
        let mut rec = synthetic_record(0.5);
        rec.app = format!("ctl[{all_controls}]\u{7f}end");
        let line = rec.to_json_line();
        assert!(!line.bytes().any(|b| b < 0x20), "raw control byte escaped into {line:?}");
        let kv = parse_json_line(&line).expect("control-character record parses strictly");
        assert_eq!(*value_of(&kv, "app"), JsonScalar::Str(rec.app.clone()), "{line}");
    }

    #[test]
    fn strict_parser_rejects_malformed_lines() {
        for bad in [
            "",
            "{",
            "{\"a\":1",
            "{\"a\":NaN}",
            "{\"a\":Infinity}",
            "{\"a\":1}trailing",
            "{\"a\":1,\"a\":2}",
            "{\"a\":{\"nested\":1}}",
            "{\"a\":[1]}",
            "{\"a\":\"unterminated}",
            "{\"a\":true}",
            "{a:1}",
        ] {
            assert!(parse_json_line(bad).is_err(), "accepted malformed line {bad:?}");
        }
        assert_eq!(parse_json_line("{}").unwrap(), vec![]);
    }
}
